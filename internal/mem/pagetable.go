package mem

// pagetable.go implements the generic two-level copy-on-write page table
// behind both the guest memory image (payload: one 4 KB page) and the §7.1
// known-memory bitmap (payload: one bit per word of a page).
//
// A 32-bit address space at 4 KB pages leaves 20 bits of page number,
// split 10/10: a fixed directory of 1024 leaf pointers, each leaf holding
// 1024 payload pointers. Lookup is two array indexes and two nil checks —
// no hashing — which is what takes the per-access hot paths of the
// recorder and the replay machines from hash-map cost to branch-and-index
// cost.
//
// Snapshots are copy-on-write at both levels. Sharing a table into a
// fresh one copies only the directory (1024 pointers) and marks every
// leaf shared in *both* tables; the first write through either table
// copies the leaf (1024 pointers) and marks its payloads shared; the
// first write to a payload copies the payload. A snapshot therefore costs
// O(directory) up front and each side pays O(1) per page it subsequently
// dirties — not O(pages) eager deep copies, and never a hash-map clone.
//
// The table is not safe for concurrent use, matching Memory's contract.

const (
	// pageIndexBits is the width of a page number.
	pageIndexBits = 32 - PageShift
	// leafBits indexes within a leaf; dirBits indexes the directory.
	leafBits  = 10
	dirBits   = pageIndexBits - leafBits
	leafSlots = 1 << leafBits
	dirSlots  = 1 << dirBits
	leafMask  = leafSlots - 1
)

// leaf is one second-level block of payload pointers plus the
// copy-on-write bits of its payloads.
type leaf[T any] struct {
	slots [leafSlots]*T
	// shared marks payloads that may be referenced by another table (or a
	// snapshot) and must be copied before mutation.
	shared [leafSlots / 64]uint64
	// used counts non-nil slots, so emptied leaves can be dropped.
	used int
}

// table is the two-level COW structure. The zero value is an empty table.
type table[T any] struct {
	dir [dirSlots]*leaf[T]
	// dirShared marks leaves that may be referenced by another table and
	// must be copied before any mutation through them.
	dirShared [dirSlots / 64]uint64
	// count is the total number of non-nil payloads.
	count int
	// gen increments whenever a payload pointer previously handed out may
	// have gone stale: a copy-on-write payload replacement or a removal.
	// Callers caching payload pointers (the CPU's fetch cache) revalidate
	// against it.
	gen uint64
}

// load returns the payload at idx for reading, or nil. Callers must not
// mutate the result; use mutable for writes.
func (t *table[T]) load(idx uint32) *T {
	l := t.dir[idx>>leafBits]
	if l == nil {
		return nil
	}
	return l.slots[idx&leafMask]
}

// mutableLeaf returns idx's leaf privately owned by t, copying a shared
// leaf first. The caller must know the leaf exists.
func (t *table[T]) mutableLeaf(di uint32) *leaf[T] {
	l := t.dir[di]
	if t.dirShared[di>>6]&(1<<(di&63)) == 0 {
		return l
	}
	cp := &leaf[T]{slots: l.slots, used: l.used}
	// Every payload in the copy is now referenced from two leaves; the
	// original keeps its own view (it stays shared from the other table's
	// perspective and is never written through t again). Bits over nil
	// slots are cleared by ensure on creation.
	for i := range cp.shared {
		cp.shared[i] = ^uint64(0)
	}
	t.dir[di] = cp
	t.dirShared[di>>6] &^= 1 << (di & 63)
	return cp
}

// mutable returns the payload at idx for writing, or nil if absent,
// copying shared structure as needed (copy-on-write).
func (t *table[T]) mutable(idx uint32) *T {
	di := idx >> leafBits
	l := t.dir[di]
	if l == nil {
		return nil
	}
	si := idx & leafMask
	if l.slots[si] == nil {
		return nil
	}
	if t.dirShared[di>>6]&(1<<(di&63)) != 0 {
		l = t.mutableLeaf(di)
	}
	if l.shared[si>>6]&(1<<(si&63)) != 0 {
		cp := new(T)
		*cp = *l.slots[si]
		l.slots[si] = cp
		l.shared[si>>6] &^= 1 << (si & 63)
		t.gen++
	}
	return l.slots[si]
}

// ensure returns the payload at idx for writing, creating a zero payload
// if absent.
func (t *table[T]) ensure(idx uint32) *T {
	di := idx >> leafBits
	si := idx & leafMask
	if t.dir[di] == nil {
		t.dir[di] = new(leaf[T])
	}
	l := t.dir[di]
	if t.dirShared[di>>6]&(1<<(di&63)) != 0 {
		l = t.mutableLeaf(di)
	}
	if l.slots[si] == nil {
		l.slots[si] = new(T)
		l.shared[si>>6] &^= 1 << (si & 63)
		l.used++
		t.count++
		return l.slots[si]
	}
	if l.shared[si>>6]&(1<<(si&63)) != 0 {
		cp := new(T)
		*cp = *l.slots[si]
		l.slots[si] = cp
		l.shared[si>>6] &^= 1 << (si & 63)
		t.gen++
	}
	return l.slots[si]
}

// remove drops the payload at idx if present.
func (t *table[T]) remove(idx uint32) {
	di := idx >> leafBits
	if t.dir[di] == nil {
		return
	}
	si := idx & leafMask
	if t.dir[di].slots[si] == nil {
		return
	}
	l := t.mutableLeaf(di)
	l.slots[si] = nil
	l.shared[si>>6] &^= 1 << (si & 63)
	l.used--
	t.count--
	t.gen++
	if l.used == 0 {
		t.dir[di] = nil
		t.dirShared[di>>6] &^= 1 << (di & 63)
	}
}

// reset empties the table in O(directory), leaving shared structure to
// the tables it was shared with.
func (t *table[T]) reset() {
	t.dir = [dirSlots]*leaf[T]{}
	t.dirShared = [dirSlots / 64]uint64{}
	t.count = 0
	t.gen++
}

// shareInto makes dst an independent logical copy of t in O(directory):
// dst adopts t's directory and every existing leaf becomes shared in both
// tables, deferring all data copying to future writes. dst must be empty.
func (t *table[T]) shareInto(dst *table[T]) {
	dst.dir = t.dir
	dst.count = t.count
	var mask [dirSlots / 64]uint64
	for i, l := range t.dir {
		if l != nil {
			mask[i>>6] |= 1 << (i & 63)
		}
	}
	dst.dirShared = mask
	for i := range mask {
		t.dirShared[i] |= mask[i]
	}
}

// forEach visits every present payload in ascending idx order.
func (t *table[T]) forEach(fn func(idx uint32, p *T)) {
	for di, l := range t.dir {
		if l == nil {
			continue
		}
		for si := 0; si < leafSlots; si++ {
			if p := l.slots[si]; p != nil {
				fn(uint32(di)<<leafBits|uint32(si), p)
			}
		}
	}
}
