package mem

import (
	"math/rand"
	"testing"
)

// TestSnapshotChainIsolation: chained snapshots and interleaved writes
// never leak through the copy-on-write sharing, in either direction.
func TestSnapshotChainIsolation(t *testing.T) {
	m := New()
	m.Map(0x2000, 4*PageSize)
	m.StoreWord(0x2000, 1)

	s1 := m.Snapshot()
	m.StoreWord(0x2000, 2)
	s2 := m.Snapshot()
	m.StoreWord(0x2000, 3)
	s3 := s2.Snapshot() // snapshot of a snapshot
	m.StoreWord(0x3000, 33)

	for i, want := range map[*Memory]uint32{s1: 1, s2: 2, s3: 2, m: 3} {
		if v, _ := i.LoadWord(0x2000); v != want {
			t.Errorf("image sees %d, want %d", v, want)
		}
	}
	// Writing a snapshot must not disturb the live image or its siblings.
	if err := s2.StoreWord(0x2000, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := s3.LoadWord(0x2000); v != 2 {
		t.Errorf("sibling snapshot saw snapshot write: %d", v)
	}
	if v, _ := m.LoadWord(0x2000); v != 3 {
		t.Errorf("live image saw snapshot write: %d", v)
	}
	if v, _ := m.LoadWord(0x3000); v != 33 {
		t.Errorf("post-snapshot write lost: %d", v)
	}
}

// TestSnapshotUnmapIsolation: unmapping in one image leaves the other's
// pages intact.
func TestSnapshotUnmapIsolation(t *testing.T) {
	m := New()
	m.Map(0, 2*PageSize)
	m.StoreWord(0, 7)
	s := m.Snapshot()
	m.Unmap(0, PageSize)
	if m.Mapped(0) {
		t.Fatal("page still mapped")
	}
	if !s.Mapped(0) {
		t.Fatal("snapshot lost its page to the live image's Unmap")
	}
	if v, _ := s.LoadWord(0); v != 7 {
		t.Fatalf("snapshot page corrupted: %d", v)
	}
	if m.MappedPages() != 1 || s.MappedPages() != 2 {
		t.Fatalf("page counts: live %d, snapshot %d", m.MappedPages(), s.MappedPages())
	}
}

// TestGenInvalidation: cached Page pointers must be detectable as stale
// through Gen whenever a copy-on-write or an Unmap replaces the backing
// array — the CPU's fetch cache depends on this.
func TestGenInvalidation(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	m.StoreWord(0, 0xAA)
	p := m.Page(0)
	gen := m.Gen()

	// In-place writes (no sharing) keep the pointer valid: same gen.
	m.StoreWord(4, 0xBB)
	if m.Gen() != gen || m.Page(0) != p {
		t.Fatal("unshared write invalidated the page pointer")
	}

	// A snapshot then a write forces a copy: gen must move and the new
	// array must carry the write.
	s := m.Snapshot()
	m.StoreWord(8, 0xCC)
	if m.Gen() == gen {
		t.Fatal("copy-on-write did not bump Gen")
	}
	if m.Page(0) == p {
		t.Fatal("page array not replaced by copy-on-write")
	}
	if v, _ := m.LoadWord(8); v != 0xCC {
		t.Fatalf("write lost in copy: %#x", v)
	}
	if v, _ := s.LoadWord(8); v == 0xCC {
		t.Fatal("snapshot saw post-snapshot write")
	}

	gen = m.Gen()
	m.Unmap(0, PageSize)
	if m.Gen() == gen {
		t.Fatal("Unmap did not bump Gen")
	}
}

// TestPageNumbersSorted: the dense table yields ascending page numbers.
func TestPageNumbersSorted(t *testing.T) {
	m := New()
	for _, p := range []uint32{900, 3, 77, 1 << 19} {
		m.Map(p<<PageShift, 1)
	}
	ns := m.PageNumbers()
	want := []uint32{3, 77, 900, 1 << 19}
	if len(ns) != len(want) {
		t.Fatalf("PageNumbers = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("PageNumbers = %v, want %v", ns, want)
		}
	}
}

// TestStoreBytesPartialWriteSemantics: StoreBytes fails at the first
// unmapped byte with that byte's address, leaving earlier bytes written —
// the contract FDR's undo-restore and the kernel loader rely on.
func TestStoreBytesPartialWriteSemantics(t *testing.T) {
	m := New()
	m.Map(0, PageSize) // page 1 unmapped
	src := make([]byte, 16)
	for i := range src {
		src[i] = byte(i + 1)
	}
	err := m.StoreBytes(PageSize-8, src)
	if err == nil {
		t.Fatal("store across unmapped boundary succeeded")
	}
	ae, ok := err.(*AccessError)
	if !ok || ae.Addr != PageSize || ae.Kind != AccessWrite {
		t.Fatalf("error = %v; want write fault at %#x", err, PageSize)
	}
	for i := 0; i < 8; i++ {
		b, _ := m.LoadByte(PageSize - 8 + uint32(i))
		if b != src[i] {
			t.Fatalf("prefix byte %d = %d, want %d", i, b, src[i])
		}
	}
	// LoadBytes mirrors the addressing.
	dst := make([]byte, 16)
	err = m.LoadBytes(PageSize-8, dst)
	ae, ok = err.(*AccessError)
	if !ok || ae.Addr != PageSize || ae.Kind != AccessRead {
		t.Fatalf("load error = %v; want read fault at %#x", err, PageSize)
	}
}

// TestSnapshotRandomizedEquivalence: under a random interleaving of
// writes and snapshots, every snapshot must equal an eagerly deep-copied
// reference taken at the same moment.
func TestSnapshotRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := New()
	const span = 8 * PageSize
	m.Map(0, span)
	type ref struct {
		snap *Memory
		data []byte
	}
	var refs []ref
	for i := 0; i < 2000; i++ {
		switch rng.Intn(10) {
		case 0:
			data := make([]byte, span)
			if err := m.LoadBytes(0, data); err != nil {
				t.Fatal(err)
			}
			refs = append(refs, ref{snap: m.Snapshot(), data: data})
		default:
			addr := uint32(rng.Intn(span/4)) * 4
			if err := m.StoreWord(addr, rng.Uint32()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, r := range refs {
		got := make([]byte, span)
		if err := r.snap.LoadBytes(0, got); err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != r.data[j] {
				t.Fatalf("snapshot %d diverges at byte %#x", i, j)
			}
		}
	}
}
