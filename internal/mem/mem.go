// Package mem implements the sparse, paged guest physical memory of the
// simulated machine.
//
// The address space is 32 bits, backed lazily by 4 KB pages held in a
// two-level copy-on-write page table (see pagetable.go): accesses cost two
// array indexes, and Snapshot is O(directory) with page copies deferred to
// the writes that actually dirty them. Accesses to unmapped pages return an
// *AccessError, which the CPU turns into the architectural memory fault
// that makes a buggy guest program crash — the event that triggers BugNet
// log collection (paper §4.8). All accesses require natural alignment;
// misaligned accesses also fault.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the guest page size in bytes.
const PageSize = 1 << PageShift

// PageShift is log2(PageSize).
const PageShift = 12

// AccessKind classifies a faulting access.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessFetch
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessFetch:
		return "fetch"
	}
	return "access"
}

// AccessError describes a faulting memory access.
type AccessError struct {
	Addr       uint32
	Kind       AccessKind
	Misaligned bool
}

func (e *AccessError) Error() string {
	if e.Misaligned {
		return fmt.Sprintf("mem: misaligned %s at 0x%08x", e.Kind, e.Addr)
	}
	return fmt.Sprintf("mem: %s of unmapped address 0x%08x", e.Kind, e.Addr)
}

// Page is the backing array of one guest page.
type Page = [PageSize]byte

// Memory is a sparse 32-bit guest address space. The zero value is not
// usable; call New. Memory is not safe for concurrent use.
type Memory struct {
	tab table[Page]

	// MapLimit, when positive, caps the number of mapped pages. TryMap
	// refuses to grow past it; Map (the kernel's loader path) ignores it.
	// Replay of untrusted logs sets a limit so hostile register states
	// cannot drive unbounded page allocation through AutoMap.
	MapLimit int
}

// New returns an empty address space with no pages mapped.
func New() *Memory {
	return &Memory{}
}

// Map ensures that every page overlapping [addr, addr+size) is mapped,
// zero-filling newly created pages. Mapping an already-mapped page is a
// no-op. size==0 maps nothing.
func (m *Memory) Map(addr uint32, size uint32) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for p := first; ; p++ {
		if m.tab.load(p) == nil {
			m.tab.ensure(p)
		}
		if p == last {
			break
		}
	}
}

// TryMap is Map, but refuses (returning false, mapping nothing new) when
// completing the range would exceed MapLimit.
func (m *Memory) TryMap(addr uint32, size uint32) bool {
	if size == 0 {
		return true
	}
	if m.MapLimit > 0 {
		need := 0
		first := addr >> PageShift
		last := (addr + size - 1) >> PageShift
		for p := first; ; p++ {
			if m.tab.load(p) == nil {
				need++
			}
			if p == last {
				break
			}
		}
		if m.tab.count+need > m.MapLimit {
			return false
		}
	}
	m.Map(addr, size)
	return true
}

// MappedPages returns the number of currently mapped pages.
func (m *Memory) MappedPages() int { return m.tab.count }

// Unmap removes every page fully contained in [addr, addr+size).
func (m *Memory) Unmap(addr uint32, size uint32) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for p := first; ; p++ {
		m.tab.remove(p)
		if p == last {
			break
		}
	}
}

// Mapped reports whether addr lies on a mapped page.
func (m *Memory) Mapped(addr uint32) bool {
	return m.tab.load(addr>>PageShift) != nil
}

// Footprint returns the number of mapped bytes (pages × page size). This is
// the quantity FDR's core dump must ship back to the developer (Table 2).
func (m *Memory) Footprint() int64 {
	return int64(m.tab.count) * PageSize
}

// page returns addr's page for reading, or nil.
func (m *Memory) page(addr uint32) *Page {
	return m.tab.load(addr >> PageShift)
}

// writable returns addr's page for writing, or nil, copying a page shared
// with a snapshot first (copy-on-write).
func (m *Memory) writable(addr uint32) *Page {
	return m.tab.mutable(addr >> PageShift)
}

// Page returns the backing array of the given page number, or nil if the
// page is unmapped. The CPU's fetch fast path reads text through it. The
// array must be treated as read-only, and the pointer revalidated against
// Gen: a copy-on-write fault or an Unmap can replace or drop the backing
// array of a previously returned page.
func (m *Memory) Page(num uint32) *Page {
	return m.tab.load(num)
}

// Gen returns the pointer-invalidation generation: it changes whenever a
// page pointer previously returned by Page may have gone stale (the page
// was copied on write or unmapped). Callers caching page pointers compare
// generations instead of re-looking pages up on every access.
func (m *Memory) Gen() uint64 { return m.tab.gen }

// LoadWord reads the naturally aligned 32-bit little-endian word at addr.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if addr&3 != 0 {
		return 0, &AccessError{Addr: addr, Kind: AccessRead, Misaligned: true}
	}
	p := m.page(addr)
	if p == nil {
		return 0, &AccessError{Addr: addr, Kind: AccessRead}
	}
	o := addr & (PageSize - 1)
	return binary.LittleEndian.Uint32(p[o : o+4 : o+4]), nil
}

// LoadHalf reads the naturally aligned 16-bit little-endian halfword at addr.
func (m *Memory) LoadHalf(addr uint32) (uint16, error) {
	if addr&1 != 0 {
		return 0, &AccessError{Addr: addr, Kind: AccessRead, Misaligned: true}
	}
	p := m.page(addr)
	if p == nil {
		return 0, &AccessError{Addr: addr, Kind: AccessRead}
	}
	o := addr & (PageSize - 1)
	return uint16(p[o]) | uint16(p[o+1])<<8, nil
}

// LoadByte reads the byte at addr.
func (m *Memory) LoadByte(addr uint32) (byte, error) {
	p := m.page(addr)
	if p == nil {
		return 0, &AccessError{Addr: addr, Kind: AccessRead}
	}
	return p[addr&(PageSize-1)], nil
}

// StoreWord writes a naturally aligned 32-bit little-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	if addr&3 != 0 {
		return &AccessError{Addr: addr, Kind: AccessWrite, Misaligned: true}
	}
	p := m.writable(addr)
	if p == nil {
		return &AccessError{Addr: addr, Kind: AccessWrite}
	}
	o := addr & (PageSize - 1)
	binary.LittleEndian.PutUint32(p[o:o+4:o+4], v)
	return nil
}

// StoreHalf writes a naturally aligned 16-bit little-endian halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) error {
	if addr&1 != 0 {
		return &AccessError{Addr: addr, Kind: AccessWrite, Misaligned: true}
	}
	p := m.writable(addr)
	if p == nil {
		return &AccessError{Addr: addr, Kind: AccessWrite}
	}
	o := addr & (PageSize - 1)
	p[o] = byte(v)
	p[o+1] = byte(v >> 8)
	return nil
}

// StoreByte writes the byte at addr.
func (m *Memory) StoreByte(addr uint32, v byte) error {
	p := m.writable(addr)
	if p == nil {
		return &AccessError{Addr: addr, Kind: AccessWrite}
	}
	p[addr&(PageSize-1)] = v
	return nil
}

// LoadBytes copies len(dst) bytes starting at addr into dst, one page span
// at a time. It fails with an *AccessError at the first unmapped byte.
func (m *Memory) LoadBytes(addr uint32, dst []byte) error {
	for len(dst) > 0 {
		p := m.page(addr)
		if p == nil {
			return &AccessError{Addr: addr, Kind: AccessRead}
		}
		o := addr & (PageSize - 1)
		n := copy(dst, p[o:])
		dst = dst[n:]
		addr += uint32(n)
	}
	return nil
}

// StoreBytes copies src into memory starting at addr, one page span at a
// time. It fails with an *AccessError at the first unmapped byte; earlier
// bytes remain written.
func (m *Memory) StoreBytes(addr uint32, src []byte) error {
	for len(src) > 0 {
		p := m.writable(addr)
		if p == nil {
			return &AccessError{Addr: addr, Kind: AccessWrite}
		}
		o := addr & (PageSize - 1)
		n := copy(p[o:], src)
		src = src[n:]
		addr += uint32(n)
	}
	return nil
}

// LoadCString reads a NUL-terminated string of at most max bytes at addr.
func (m *Memory) LoadCString(addr uint32, max int) (string, error) {
	var buf []byte
	for i := 0; i < max; i++ {
		b, err := m.LoadByte(addr + uint32(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			break
		}
		buf = append(buf, b)
	}
	return string(buf), nil
}

// PageNumbers returns the mapped page numbers in ascending order.
func (m *Memory) PageNumbers() []uint32 {
	out := make([]uint32, 0, m.tab.count)
	m.tab.forEach(func(idx uint32, _ *Page) {
		out = append(out, idx)
	})
	return out
}

// Snapshot returns an independent logical copy of the address space,
// including the map limit. The copy is O(directory): pages become shared
// copy-on-write between the two images, and each side pays for a page
// only when it subsequently writes it. FDR's replayer uses snapshots as
// the core-dump image from which checkpoint state is rebuilt; replay
// checkpointing uses them as the known-memory image of a restore point.
func (m *Memory) Snapshot() *Memory {
	s := New()
	s.MapLimit = m.MapLimit
	m.tab.shareInto(&s.tab)
	return s
}
