// Package mem implements the sparse, paged guest physical memory of the
// simulated machine.
//
// The address space is 32 bits, backed lazily by 4 KB pages. Accesses to
// unmapped pages return an *AccessError, which the CPU turns into the
// architectural memory fault that makes a buggy guest program crash — the
// event that triggers BugNet log collection (paper §4.8). All accesses
// require natural alignment; misaligned accesses also fault.
package mem

import "fmt"

// PageSize is the guest page size in bytes.
const PageSize = 1 << PageShift

// PageShift is log2(PageSize).
const PageShift = 12

// AccessKind classifies a faulting access.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessFetch
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessFetch:
		return "fetch"
	}
	return "access"
}

// AccessError describes a faulting memory access.
type AccessError struct {
	Addr       uint32
	Kind       AccessKind
	Misaligned bool
}

func (e *AccessError) Error() string {
	if e.Misaligned {
		return fmt.Sprintf("mem: misaligned %s at 0x%08x", e.Kind, e.Addr)
	}
	return fmt.Sprintf("mem: %s of unmapped address 0x%08x", e.Kind, e.Addr)
}

// Memory is a sparse 32-bit guest address space. The zero value is not
// usable; call New.
type Memory struct {
	pages map[uint32]*[PageSize]byte

	// MapLimit, when positive, caps the number of mapped pages. TryMap
	// refuses to grow past it; Map (the kernel's loader path) ignores it.
	// Replay of untrusted logs sets a limit so hostile register states
	// cannot drive unbounded page allocation through AutoMap.
	MapLimit int
}

// New returns an empty address space with no pages mapped.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*[PageSize]byte)}
}

// Map ensures that every page overlapping [addr, addr+size) is mapped,
// zero-filling newly created pages. Mapping an already-mapped page is a
// no-op. size==0 maps nothing.
func (m *Memory) Map(addr uint32, size uint32) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for p := first; ; p++ {
		if _, ok := m.pages[p]; !ok {
			m.pages[p] = new([PageSize]byte)
		}
		if p == last {
			break
		}
	}
}

// TryMap is Map, but refuses (returning false, mapping nothing new) when
// completing the range would exceed MapLimit.
func (m *Memory) TryMap(addr uint32, size uint32) bool {
	if size == 0 {
		return true
	}
	if m.MapLimit > 0 {
		need := 0
		first := addr >> PageShift
		last := (addr + size - 1) >> PageShift
		for p := first; ; p++ {
			if _, ok := m.pages[p]; !ok {
				need++
			}
			if p == last {
				break
			}
		}
		if len(m.pages)+need > m.MapLimit {
			return false
		}
	}
	m.Map(addr, size)
	return true
}

// MappedPages returns the number of currently mapped pages.
func (m *Memory) MappedPages() int { return len(m.pages) }

// Unmap removes every page fully contained in [addr, addr+size).
func (m *Memory) Unmap(addr uint32, size uint32) {
	if size == 0 {
		return
	}
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for p := first; ; p++ {
		delete(m.pages, p)
		if p == last {
			break
		}
	}
}

// Mapped reports whether addr lies on a mapped page.
func (m *Memory) Mapped(addr uint32) bool {
	_, ok := m.pages[addr>>PageShift]
	return ok
}

// Footprint returns the number of mapped bytes (pages × page size). This is
// the quantity FDR's core dump must ship back to the developer (Table 2).
func (m *Memory) Footprint() int64 {
	return int64(len(m.pages)) * PageSize
}

func (m *Memory) page(addr uint32) *[PageSize]byte {
	return m.pages[addr>>PageShift]
}

// Page returns the backing array of the given page number, or nil if the
// page is unmapped. The CPU's fetch fast path reads text through it.
func (m *Memory) Page(num uint32) *[PageSize]byte {
	return m.pages[num]
}

// LoadWord reads the naturally aligned 32-bit little-endian word at addr.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if addr&3 != 0 {
		return 0, &AccessError{Addr: addr, Kind: AccessRead, Misaligned: true}
	}
	p := m.page(addr)
	if p == nil {
		return 0, &AccessError{Addr: addr, Kind: AccessRead}
	}
	o := addr & (PageSize - 1)
	return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24, nil
}

// LoadHalf reads the naturally aligned 16-bit little-endian halfword at addr.
func (m *Memory) LoadHalf(addr uint32) (uint16, error) {
	if addr&1 != 0 {
		return 0, &AccessError{Addr: addr, Kind: AccessRead, Misaligned: true}
	}
	p := m.page(addr)
	if p == nil {
		return 0, &AccessError{Addr: addr, Kind: AccessRead}
	}
	o := addr & (PageSize - 1)
	return uint16(p[o]) | uint16(p[o+1])<<8, nil
}

// LoadByte reads the byte at addr.
func (m *Memory) LoadByte(addr uint32) (byte, error) {
	p := m.page(addr)
	if p == nil {
		return 0, &AccessError{Addr: addr, Kind: AccessRead}
	}
	return p[addr&(PageSize-1)], nil
}

// StoreWord writes a naturally aligned 32-bit little-endian word.
func (m *Memory) StoreWord(addr uint32, v uint32) error {
	if addr&3 != 0 {
		return &AccessError{Addr: addr, Kind: AccessWrite, Misaligned: true}
	}
	p := m.page(addr)
	if p == nil {
		return &AccessError{Addr: addr, Kind: AccessWrite}
	}
	o := addr & (PageSize - 1)
	p[o] = byte(v)
	p[o+1] = byte(v >> 8)
	p[o+2] = byte(v >> 16)
	p[o+3] = byte(v >> 24)
	return nil
}

// StoreHalf writes a naturally aligned 16-bit little-endian halfword.
func (m *Memory) StoreHalf(addr uint32, v uint16) error {
	if addr&1 != 0 {
		return &AccessError{Addr: addr, Kind: AccessWrite, Misaligned: true}
	}
	p := m.page(addr)
	if p == nil {
		return &AccessError{Addr: addr, Kind: AccessWrite}
	}
	o := addr & (PageSize - 1)
	p[o] = byte(v)
	p[o+1] = byte(v >> 8)
	return nil
}

// StoreByte writes the byte at addr.
func (m *Memory) StoreByte(addr uint32, v byte) error {
	p := m.page(addr)
	if p == nil {
		return &AccessError{Addr: addr, Kind: AccessWrite}
	}
	p[addr&(PageSize-1)] = v
	return nil
}

// LoadBytes copies len(dst) bytes starting at addr into dst. It fails with
// an *AccessError at the first unmapped byte.
func (m *Memory) LoadBytes(addr uint32, dst []byte) error {
	for i := range dst {
		b, err := m.LoadByte(addr + uint32(i))
		if err != nil {
			return err
		}
		dst[i] = b
	}
	return nil
}

// StoreBytes copies src into memory starting at addr. It fails with an
// *AccessError at the first unmapped byte; earlier bytes remain written.
func (m *Memory) StoreBytes(addr uint32, src []byte) error {
	for i, b := range src {
		if err := m.StoreByte(addr+uint32(i), b); err != nil {
			return err
		}
	}
	return nil
}

// LoadCString reads a NUL-terminated string of at most max bytes at addr.
func (m *Memory) LoadCString(addr uint32, max int) (string, error) {
	var buf []byte
	for i := 0; i < max; i++ {
		b, err := m.LoadByte(addr + uint32(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			break
		}
		buf = append(buf, b)
	}
	return string(buf), nil
}

// PageNumbers returns the set of mapped page numbers in unspecified order.
func (m *Memory) PageNumbers() []uint32 {
	out := make([]uint32, 0, len(m.pages))
	for p := range m.pages {
		out = append(out, p)
	}
	return out
}

// Snapshot returns a deep copy of the address space, including the map
// limit. FDR's replayer uses snapshots as the core-dump image from which
// checkpoint state is rebuilt; replay checkpointing uses them as the
// known-memory image of a restore point.
func (m *Memory) Snapshot() *Memory {
	s := New()
	s.MapLimit = m.MapLimit
	for n, p := range m.pages {
		cp := *p
		s.pages[n] = &cp
	}
	return s
}
