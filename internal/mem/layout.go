package mem

// Conventional guest address-space layout used by the assembler, loader and
// kernel. The values mirror a classic Unix process image so the Table 1 bug
// analogues (stack smashes, global overflows, heap corruptions) behave the
// way their real counterparts did.
const (
	// TextBase is where program text is loaded.
	TextBase uint32 = 0x0040_0000
	// DataBase is where the initialized data segment is loaded.
	DataBase uint32 = 0x1000_0000
	// StackTop is the initial stack pointer (stacks grow down).
	StackTop uint32 = 0x7FFF_F000
	// DefaultStackSize is the mapped size of the main thread's stack.
	DefaultStackSize uint32 = 1 << 20
	// ThreadStackSize is the mapped size of each spawned thread's stack.
	ThreadStackSize uint32 = 1 << 18
	// NullGuardSize is the size of the deliberately unmapped region at
	// address zero, so null-pointer dereferences fault like on a real OS.
	NullGuardSize uint32 = 1 << 16
)
