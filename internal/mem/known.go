package mem

// known.go implements the §7.1 known-memory set: the word addresses a
// replayed window has touched (injected first loads or replayed stores).
// BugNet logs carry no core dump, so only these locations have examinable
// values during replay debugging; everything else reports unknown.
//
// The set is a page-granular bitmap — one bit per 32-bit word, 128 bytes
// per touched page — held in the same two-level copy-on-write table as
// guest memory. Membership tests and inserts are branch-and-bitmap cheap
// (the per-access cost iReplayer shows in-situ replay needs), and Clone is
// O(directory) with the page bitmaps shared copy-on-write, which is what
// lets replay checkpoints stop deep-copying word maps.

import "math/bits"

// WordsPerPage is the number of 32-bit words in one guest page.
const WordsPerPage = PageSize / 4

// knownBits is one page's worth of per-word bits.
type knownBits [WordsPerPage / 64]uint64

// KnownSet is a set of aligned word addresses. The zero value is empty
// and ready to use. KnownSet is not safe for concurrent use.
type KnownSet struct {
	tab   table[knownBits]
	words int
}

// NewKnownSet returns an empty set.
func NewKnownSet() *KnownSet { return &KnownSet{} }

// Add inserts the word containing addr.
func (k *KnownSet) Add(addr uint32) {
	pi := addr >> PageShift
	w := (addr >> 2) & (WordsPerPage - 1)
	if b := k.tab.load(pi); b != nil && b[w>>6]&(1<<(w&63)) != 0 {
		return // already present: no copy-on-write, no count update
	}
	b := k.tab.ensure(pi)
	b[w>>6] |= 1 << (w & 63)
	k.words++
}

// Has reports whether the word containing addr is in the set.
func (k *KnownSet) Has(addr uint32) bool {
	b := k.tab.load(addr >> PageShift)
	if b == nil {
		return false
	}
	w := (addr >> 2) & (WordsPerPage - 1)
	return b[w>>6]&(1<<(w&63)) != 0
}

// Len returns the number of words in the set.
func (k *KnownSet) Len() int { return k.words }

// Pages returns the number of pages with at least one word in the set.
func (k *KnownSet) Pages() int { return k.tab.count }

// Reset empties the set in O(directory).
func (k *KnownSet) Reset() {
	k.tab.reset()
	k.words = 0
}

// Clone returns an independent logical copy in O(directory): the page
// bitmaps become shared copy-on-write, so neither side's future inserts
// affect the other. Clone of a nil set returns nil.
func (k *KnownSet) Clone() *KnownSet {
	if k == nil {
		return nil
	}
	c := &KnownSet{words: k.words}
	k.tab.shareInto(&c.tab)
	return c
}

// Words returns the word addresses in ascending order.
func (k *KnownSet) Words() []uint32 {
	out := make([]uint32, 0, k.words)
	k.tab.forEach(func(pi uint32, b *knownBits) {
		base := pi << PageShift
		for i, word := range b {
			for word != 0 {
				bit := uint32(bits.TrailingZeros64(word))
				out = append(out, base|(uint32(i)<<6|bit)<<2)
				word &= word - 1
			}
		}
	})
	return out
}

// SizeBytes estimates the set's worst-case memory footprint for checkpoint
// byte budgets: the page bitmaps plus table overhead. Copy-on-write
// sharing can make the marginal cost of a clone far smaller; budgets use
// the conservative unshared figure.
func (k *KnownSet) SizeBytes() int64 {
	if k == nil {
		return 0
	}
	return int64(k.tab.count)*int64(len(knownBits{})*8) + 64
}

// forEachPage visits every touched page's bitmap in ascending page order
// (the codec's iteration order).
func (k *KnownSet) forEachPage(fn func(pageNum uint32, b *knownBits)) {
	k.tab.forEach(fn)
}
