package asm

import "testing"

// FuzzAssemble hardens the assembler against arbitrary source text: it
// must return an error or an image, never panic, and any produced text
// section must be whole instructions.
func FuzzAssemble(f *testing.F) {
	f.Add("main: li a0, 1\n")
	f.Add(".data\nx: .word 1, 2\n.text\nlw a0, (zero)\n")
	f.Add(".equ N, 4\naddi a0, zero, N\n")
	f.Add("lbl:\n  j lbl\n")
	f.Add(".asciiz \"unterminated")
	f.Add("addi a0")

	f.Fuzz(func(t *testing.T, src string) {
		img, err := Assemble("fuzz.s", src)
		if err != nil {
			return
		}
		if len(img.Text)%4 != 0 {
			t.Fatalf("text length %d not word aligned", len(img.Text))
		}
		for _, addr := range img.Symbols {
			_ = addr // symbol addresses must simply exist; no invariant beyond that
		}
	})
}
