package asm

import (
	"strconv"
	"strings"

	"bugnet/internal/isa"
)

// encodeInstruction expands one (pseudo)instruction into machine words.
func (a *assembler) encodeInstruction(it *item) ([]uint32, error) {
	enc := func(ins isa.Instruction) ([]uint32, error) {
		w, err := isa.Encode(ins)
		if err != nil {
			return nil, a.errf(it.line, "%v", err)
		}
		return []uint32{w}, nil
	}

	switch it.mnem {
	case "nop":
		return enc(isa.Instruction{Op: isa.OpADDI})
	case "li":
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		v64, err := a.number(it.args[1], it.line)
		if err != nil {
			return nil, err
		}
		return a.expandLI(it, rd, int32(v64))
	case "la":
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		if len(it.args) != 2 {
			return nil, a.errf(it.line, "la wants rd, symbol")
		}
		addr, err := a.value(it.args[1], it.line)
		if err != nil {
			return nil, err
		}
		return a.expandLUIADDI(it, rd, int32(addr), true)
	case "mv":
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: isa.OpADDI, Rd: rd, Rs1: rs})
	case "not":
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1})
	case "neg":
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: isa.OpSUB, Rd: rd, Rs2: rs})
	case "seqz":
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: isa.OpSLTIU, Rd: rd, Rs1: rs, Imm: 1})
	case "snez":
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: isa.OpSLTU, Rd: rd, Rs2: rs})
	case "subi":
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		v, err := a.number(it.args[2], it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: isa.OpADDI, Rd: rd, Rs1: rs, Imm: int32(-v)})
	case "call":
		if len(it.args) != 1 {
			return nil, a.errf(it.line, "call wants a target label")
		}
		off, err := a.relTarget(it.args[0], it.addr, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: isa.OpJAL, Imm: off})
	case "ret":
		return enc(isa.Instruction{Op: isa.OpJALR, Rd: isa.RegZero, Rs1: isa.RegRA})
	case "jr":
		rs, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: isa.OpJALR, Rd: isa.RegZero, Rs1: rs})
	case "beqz", "bnez", "bltz", "bgez", "bgtz", "blez":
		rs, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		if len(it.args) != 2 {
			return nil, a.errf(it.line, "%s wants rs, label", it.mnem)
		}
		off, err := a.relTarget(it.args[1], it.addr, it.line)
		if err != nil {
			return nil, err
		}
		var ins isa.Instruction
		switch it.mnem {
		case "beqz":
			ins = isa.Instruction{Op: isa.OpBEQ, Rs1: rs, Rs2: isa.RegZero}
		case "bnez":
			ins = isa.Instruction{Op: isa.OpBNE, Rs1: rs, Rs2: isa.RegZero}
		case "bltz":
			ins = isa.Instruction{Op: isa.OpBLT, Rs1: rs, Rs2: isa.RegZero}
		case "bgez":
			ins = isa.Instruction{Op: isa.OpBGE, Rs1: rs, Rs2: isa.RegZero}
		case "bgtz": // rs > 0  <=>  0 < rs
			ins = isa.Instruction{Op: isa.OpBLT, Rs1: isa.RegZero, Rs2: rs}
		case "blez": // rs <= 0 <=>  0 >= ... BGE zero, rs
			ins = isa.Instruction{Op: isa.OpBGE, Rs1: isa.RegZero, Rs2: rs}
		}
		ins.Imm = off
		return enc(ins)
	case "ble", "bgt", "bleu", "bgtu":
		r1, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		r2, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		if len(it.args) != 3 {
			return nil, a.errf(it.line, "%s wants rs1, rs2, label", it.mnem)
		}
		off, err := a.relTarget(it.args[2], it.addr, it.line)
		if err != nil {
			return nil, err
		}
		var ins isa.Instruction
		switch it.mnem {
		case "ble": // a <= b  <=>  b >= a
			ins = isa.Instruction{Op: isa.OpBGE, Rs1: r2, Rs2: r1}
		case "bgt": // a > b   <=>  b < a
			ins = isa.Instruction{Op: isa.OpBLT, Rs1: r2, Rs2: r1}
		case "bleu":
			ins = isa.Instruction{Op: isa.OpBGEU, Rs1: r2, Rs2: r1}
		case "bgtu":
			ins = isa.Instruction{Op: isa.OpBLTU, Rs1: r2, Rs2: r1}
		}
		ins.Imm = off
		return enc(ins)
	}

	op, ok := isa.OpcodeByName(it.mnem)
	if !ok {
		return nil, a.errf(it.line, "unknown instruction %q", it.mnem)
	}
	switch {
	case op == isa.OpSYSCALL || op == isa.OpBREAK:
		return enc(isa.Instruction{Op: op})
	case op.IsLoad() || op.IsStore():
		// op rd, imm(rs1)   — rd is the value register for stores too.
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		if len(it.args) != 2 {
			return nil, a.errf(it.line, "%s wants rd, offset(base)", it.mnem)
		}
		imm, base, err := a.memOperand(it.args[1], it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: op, Rd: rd, Rs1: base, Imm: imm})
	case op.IsAMO():
		// op rd, rs2, (rs1)
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		if len(it.args) != 3 {
			return nil, a.errf(it.line, "%s wants rd, rs2, (rs1)", it.mnem)
		}
		addr := strings.TrimSuffix(strings.TrimPrefix(it.args[2], "("), ")")
		rs1, ok := isa.RegByName(addr)
		if !ok {
			return nil, a.errf(it.line, "bad address register %q", it.args[2])
		}
		return enc(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	case op.IsBranch():
		r1, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		r2, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		if len(it.args) != 3 {
			return nil, a.errf(it.line, "%s wants rs1, rs2, label", it.mnem)
		}
		off, err := a.relTarget(it.args[2], it.addr, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: op, Rs1: r1, Rs2: r2, Imm: off})
	case op == isa.OpJAL || op == isa.OpJ:
		if len(it.args) != 1 {
			return nil, a.errf(it.line, "%s wants a target label", it.mnem)
		}
		off, err := a.relTarget(it.args[0], it.addr, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: op, Imm: off})
	case op == isa.OpJALR:
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		var imm int64
		if len(it.args) == 3 {
			imm, err = a.number(it.args[2], it.line)
			if err != nil {
				return nil, err
			}
		}
		return enc(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: int32(imm)})
	case op == isa.OpLUI:
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		v, err := a.number(it.args[1], it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: op, Rd: rd, Imm: int32(v)})
	case op.Format() == isa.FormatR:
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(it.args, 2, it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	case op.Format() == isa.FormatI:
		rd, err := a.reg(it.args, 0, it.line)
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(it.args, 1, it.line)
		if err != nil {
			return nil, err
		}
		if len(it.args) != 3 {
			return nil, a.errf(it.line, "%s wants rd, rs1, imm", it.mnem)
		}
		v, err := a.number(it.args[2], it.line)
		if err != nil {
			return nil, err
		}
		return enc(isa.Instruction{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)})
	}
	return nil, a.errf(it.line, "cannot encode %q", it.mnem)
}

// expandLI emits the shortest sequence loading the 32-bit constant v.
func (a *assembler) expandLI(it *item, rd uint8, v int32) ([]uint32, error) {
	if v >= isa.MinImm16 && v <= isa.MaxImm16 {
		w, err := isa.Encode(isa.Instruction{Op: isa.OpADDI, Rd: rd, Imm: v})
		if err != nil {
			return nil, a.errf(it.line, "%v", err)
		}
		return []uint32{w}, nil
	}
	return a.expandLUIADDI(it, rd, v, false)
}

// expandLUIADDI emits lui+addi computing v. If forcePair is true the addi is
// emitted even when it would be a no-op, to keep pass-1 sizing label-free.
func (a *assembler) expandLUIADDI(it *item, rd uint8, v int32, forcePair bool) ([]uint32, error) {
	lo := int32(int16(uint16(uint32(v))))
	hi := (v - lo) >> 16 // the 16 bits LUI must place in the upper half
	luiw, err := isa.Encode(isa.Instruction{Op: isa.OpLUI, Rd: rd, Imm: int32(int16(uint16(hi)))})
	if err != nil {
		return nil, a.errf(it.line, "%v", err)
	}
	if lo == 0 && !forcePair {
		return []uint32{luiw}, nil
	}
	addiw, err := isa.Encode(isa.Instruction{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo})
	if err != nil {
		return nil, a.errf(it.line, "%v", err)
	}
	return []uint32{luiw, addiw}, nil
}

// reg parses the idx'th operand as a register name.
func (a *assembler) reg(args []string, idx int, line int) (uint8, error) {
	if idx >= len(args) {
		return 0, a.errf(line, "missing register operand %d", idx+1)
	}
	r, ok := isa.RegByName(args[idx])
	if !ok {
		return 0, a.errf(line, "unknown register %q", args[idx])
	}
	return r, nil
}

// memOperand parses "offset(base)" or "(base)" or "symbol(base)".
func (a *assembler) memOperand(s string, line int) (int32, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf(line, "bad memory operand %q; want offset(base)", s)
	}
	base, ok := isa.RegByName(s[open+1 : len(s)-1])
	if !ok {
		return 0, 0, a.errf(line, "bad base register in %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return 0, base, nil
	}
	v, err := a.number(offStr, line)
	if err != nil {
		return 0, 0, err
	}
	return int32(v), base, nil
}

// relTarget resolves a label (or absolute expression) to a PC-relative byte
// offset from the instruction's successor.
func (a *assembler) relTarget(arg string, pc uint32, line int) (int32, error) {
	v, err := a.value(arg, line)
	if err != nil {
		return 0, err
	}
	return int32(uint32(v) - (pc + isa.WordSize)), nil
}

// number evaluates a purely numeric expression (literal or .equ constant,
// with optional +/- literal suffix). It rejects label references.
func (a *assembler) number(s string, line int) (int64, error) {
	v, isLabel, err := a.eval(s, line)
	if err != nil {
		return 0, err
	}
	if isLabel {
		return 0, a.errf(line, "label reference %q not allowed here", s)
	}
	return v, nil
}

// value evaluates an expression that may reference a label.
func (a *assembler) value(s string, line int) (int64, error) {
	v, _, err := a.eval(s, line)
	return v, err
}

// eval evaluates "term" or "term+term" or "term-term" where terms are
// integer literals, character literals, .equ constants, or labels.
func (a *assembler) eval(s string, line int) (val int64, usedLabel bool, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false, a.errf(line, "empty expression")
	}
	// Find a top-level +/- (not the leading sign).
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			if s[i-1] == 'x' || s[i-1] == 'X' || s[i-1] == '+' || s[i-1] == '-' {
				continue
			}
			l, ll, err := a.eval(s[:i], line)
			if err != nil {
				return 0, false, err
			}
			r, rl, err := a.eval(s[i+1:], line)
			if err != nil {
				return 0, false, err
			}
			if s[i] == '+' {
				return l + r, ll || rl, nil
			}
			return l - r, ll || rl, nil
		}
	}
	return a.term(s, line)
}

func (a *assembler) term(s string, line int) (int64, bool, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false, a.errf(line, "empty term")
	}
	// Character literal.
	if strings.HasPrefix(s, "'") {
		r, err := strconv.Unquote(s)
		if err != nil || len(r) == 0 {
			return 0, false, a.errf(line, "bad character literal %s", s)
		}
		return int64(r[0]), false, nil
	}
	// Integer literal (decimal, hex, octal, binary per Go syntax).
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, false, nil
	}
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return int64(v), false, nil
	}
	// Equate.
	if v, ok := a.equates[s]; ok {
		return v, false, nil
	}
	// Label.
	if addr, ok := a.symbols[s]; ok {
		return int64(addr), true, nil
	}
	return 0, false, a.errf(line, "undefined symbol %q", s)
}

// --- lexical helpers ---

// stripComment removes '#', '//' and ';' comments, respecting string
// literals so ".asciiz "a#b"" survives.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '#' || c == ';':
			return s[:i]
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

// labelEnd returns the index of a leading label's ':' or -1. It only
// considers a ':' before any whitespace-separated second token containing
// quotes or parens, to avoid misreading operands.
func labelEnd(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ':':
			return i
		case c == '"' || c == '(' || c == ',' || c == ' ' || c == '\t':
			return -1
		}
	}
	return -1
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitFirst splits off the first whitespace-delimited token.
func splitFirst(s string) (first, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// splitArgs splits a comma-separated operand list, respecting string and
// character literals.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var args []string
	depth := 0
	inStr, inChar := false, false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args
}
