package asm

import (
	"strings"
	"testing"

	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

func mustAsm(t *testing.T, src string) *Image {
	t.Helper()
	img, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return img
}

// textWord extracts the i'th instruction word from the image.
func textWord(img *Image, i int) uint32 {
	o := i * 4
	return uint32(img.Text[o]) | uint32(img.Text[o+1])<<8 |
		uint32(img.Text[o+2])<<16 | uint32(img.Text[o+3])<<24
}

func TestBasicProgram(t *testing.T) {
	img := mustAsm(t, `
        .text
main:   addi a0, zero, 5
        addi a1, zero, 7
        add  a0, a0, a1
        syscall
`)
	if img.Entry != mem.TextBase {
		t.Errorf("entry = %#x; want %#x", img.Entry, mem.TextBase)
	}
	if len(img.Text) != 16 {
		t.Fatalf("text len = %d", len(img.Text))
	}
	ins := isa.Decode(textWord(img, 2))
	want := isa.Instruction{Op: isa.OpADD, Rd: isa.RegA0, Rs1: isa.RegA0, Rs2: isa.RegA1}
	if ins != want {
		t.Errorf("third instruction = %+v; want %+v", ins, want)
	}
}

func TestEntryPreference(t *testing.T) {
	img := mustAsm(t, `
        .text
helper: nop
_start: nop
main:   nop
`)
	if img.Entry != img.MustSymbol("_start") {
		t.Errorf("entry = %#x; want _start", img.Entry)
	}
	img2 := mustAsm(t, "\nmain: nop\nother: nop\n")
	if img2.Entry != img2.MustSymbol("main") {
		t.Error("entry should fall back to main")
	}
}

func TestDataDirectives(t *testing.T) {
	img := mustAsm(t, `
        .data
bytes:  .byte 1, 2, 0xFF, 'A'
half:   .half 0x1234
words:  .word 0xDEADBEEF, -1
str:    .asciiz "hi\n"
raw:    .ascii "ab"
gap:    .space 3
        .align 2
end:    .word 7
`)
	if img.Data[0] != 1 || img.Data[1] != 2 || img.Data[2] != 0xFF || img.Data[3] != 'A' {
		t.Errorf("bytes = %v", img.Data[:4])
	}
	halfAddr := img.MustSymbol("half") - mem.DataBase
	if img.Data[halfAddr] != 0x34 || img.Data[halfAddr+1] != 0x12 {
		t.Error("half not little-endian")
	}
	wordsAddr := img.MustSymbol("words") - mem.DataBase
	if wordsAddr%4 != 0 {
		t.Errorf(".word not aligned: offset %d", wordsAddr)
	}
	if img.Data[wordsAddr] != 0xEF || img.Data[wordsAddr+3] != 0xDE {
		t.Error(".word bytes wrong")
	}
	strAddr := img.MustSymbol("str") - mem.DataBase
	if string(img.Data[strAddr:strAddr+4]) != "hi\n\x00" {
		t.Errorf("asciiz = %q", img.Data[strAddr:strAddr+4])
	}
	endAddr := img.MustSymbol("end")
	if endAddr%4 != 0 {
		t.Errorf("end not aligned: %#x", endAddr)
	}
}

func TestWordWithLabel(t *testing.T) {
	img := mustAsm(t, `
        .data
tbl:    .word fn, fn+4
        .text
fn:     nop
        nop
`)
	fn := img.MustSymbol("fn")
	got := uint32(img.Data[0]) | uint32(img.Data[1])<<8 | uint32(img.Data[2])<<16 | uint32(img.Data[3])<<24
	if got != fn {
		t.Errorf(".word fn = %#x; want %#x", got, fn)
	}
	got2 := uint32(img.Data[4]) | uint32(img.Data[5])<<8 | uint32(img.Data[6])<<16 | uint32(img.Data[7])<<24
	if got2 != fn+4 {
		t.Errorf(".word fn+4 = %#x; want %#x", got2, fn+4)
	}
}

func TestLIExpansions(t *testing.T) {
	img := mustAsm(t, `
        li t0, 5
        li t1, -5
        li t2, 0x12345678
        li t3, 0x10000
        li t4, -100000
`)
	// li t0, 5 -> addi
	if ins := isa.Decode(textWord(img, 0)); ins.Op != isa.OpADDI || ins.Imm != 5 {
		t.Errorf("li small = %+v", ins)
	}
	// decode-and-execute check for the wide ones
	checkConst := func(startWord int, want uint32) {
		t.Helper()
		var reg uint32
		ins := isa.Decode(textWord(img, startWord))
		if ins.Op == isa.OpLUI {
			reg = uint32(ins.Imm) << 16
			next := isa.Decode(textWord(img, startWord+1))
			if next.Op == isa.OpADDI && next.Rs1 == ins.Rd && next.Rd == ins.Rd {
				reg += uint32(next.Imm)
			}
		} else if ins.Op == isa.OpADDI {
			reg = uint32(ins.Imm)
		}
		if reg != want {
			t.Errorf("li materialized %#x; want %#x", reg, want)
		}
	}
	checkConst(2, 0x12345678)
	checkConst(4, 0x10000)
	checkConst(5, uint32(0xFFFE7960)) // -100000
}

func TestLAMatchesSymbol(t *testing.T) {
	img := mustAsm(t, `
        .data
        .space 0x8000
x:      .word 1
        .text
main:   la a0, x
`)
	want := img.MustSymbol("x")
	lui := isa.Decode(textWord(img, 0))
	addi := isa.Decode(textWord(img, 1))
	if lui.Op != isa.OpLUI || addi.Op != isa.OpADDI {
		t.Fatalf("la expansion = %v, %v", lui.Op, addi.Op)
	}
	got := uint32(lui.Imm)<<16 + uint32(addi.Imm)
	if got != want {
		t.Errorf("la computes %#x; want %#x", got, want)
	}
}

func TestBranchTargets(t *testing.T) {
	img := mustAsm(t, `
main:   beq a0, a1, skip
        nop
skip:   bne a0, a1, main
        j main
        beqz a0, main
        ble a0, a1, main
`)
	// beq at word 0, target = word 2: offset = 2*4 - 4 = 4
	if ins := isa.Decode(textWord(img, 0)); ins.Imm != 4 {
		t.Errorf("forward branch imm = %d; want 4", ins.Imm)
	}
	// bne at word 2, target = word 0: offset = -(2*4) - 4 = -12
	if ins := isa.Decode(textWord(img, 2)); ins.Imm != -12 {
		t.Errorf("backward branch imm = %d; want -12", ins.Imm)
	}
	if ins := isa.Decode(textWord(img, 3)); ins.Op != isa.OpJ || ins.Imm != -16 {
		t.Errorf("j = %+v", ins)
	}
	if ins := isa.Decode(textWord(img, 4)); ins.Op != isa.OpBEQ || ins.Rs2 != isa.RegZero {
		t.Errorf("beqz = %+v", ins)
	}
	// ble a0, a1 -> bge a1, a0
	if ins := isa.Decode(textWord(img, 5)); ins.Op != isa.OpBGE || ins.Rs1 != isa.RegA1 || ins.Rs2 != isa.RegA0 {
		t.Errorf("ble = %+v", ins)
	}
}

func TestMemOperands(t *testing.T) {
	img := mustAsm(t, `
        lw  a0, 8(sp)
        sw  a0, -4(s0)
        lb  t0, (a1)
        amoswap t0, t1, (a2)
`)
	if ins := isa.Decode(textWord(img, 0)); ins.Op != isa.OpLW || ins.Imm != 8 || ins.Rs1 != isa.RegSP {
		t.Errorf("lw = %+v", ins)
	}
	if ins := isa.Decode(textWord(img, 1)); ins.Op != isa.OpSW || ins.Imm != -4 || ins.Rs1 != isa.RegS0 || ins.Rd != isa.RegA0 {
		t.Errorf("sw = %+v", ins)
	}
	if ins := isa.Decode(textWord(img, 2)); ins.Op != isa.OpLB || ins.Imm != 0 || ins.Rs1 != isa.RegA1 {
		t.Errorf("lb = %+v", ins)
	}
	if ins := isa.Decode(textWord(img, 3)); ins.Op != isa.OpAMOSWAP || ins.Rs1 != isa.RegA2 || ins.Rs2 != isa.RegT1 {
		t.Errorf("amoswap = %+v", ins)
	}
}

func TestCallRet(t *testing.T) {
	img := mustAsm(t, `
main:   call fn
        syscall
fn:     ret
`)
	if ins := isa.Decode(textWord(img, 0)); ins.Op != isa.OpJAL || ins.Imm != 4 {
		t.Errorf("call = %+v", ins)
	}
	if ins := isa.Decode(textWord(img, 2)); ins.Op != isa.OpJALR || ins.Rs1 != isa.RegRA || ins.Rd != isa.RegZero {
		t.Errorf("ret = %+v", ins)
	}
}

func TestEquates(t *testing.T) {
	img := mustAsm(t, `
        .equ SYS_exit, 1
        .equ BUFSZ, 0x40
        li a7, SYS_exit
        addi a0, zero, BUFSZ
`)
	if ins := isa.Decode(textWord(img, 0)); ins.Imm != 1 {
		t.Errorf("equate SYS_exit = %+v", ins)
	}
	if ins := isa.Decode(textWord(img, 1)); ins.Imm != 0x40 {
		t.Errorf("equate BUFSZ = %+v", ins)
	}
}

func TestComments(t *testing.T) {
	img := mustAsm(t, `
        # full line comment
        nop          # trailing
        nop          // c++ style
        nop          ; asm style
        .data
s:      .asciiz "a#b;c//d"   # comment after string
`)
	if len(img.Text) != 12 {
		t.Errorf("text len = %d; want 12", len(img.Text))
	}
	off := img.MustSymbol("s") - mem.DataBase
	if string(img.Data[off:off+8]) != "a#b;c//d" {
		t.Errorf("string = %q", img.Data[off:off+8])
	}
}

func TestPseudoOps(t *testing.T) {
	img := mustAsm(t, `
        mv a0, a1
        not t0, t1
        neg t2, t3
        seqz a2, a3
        snez a4, a5
        subi sp, sp, 16
        jr ra
        nop
`)
	checks := []isa.Instruction{
		{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA1},
		{Op: isa.OpXORI, Rd: isa.RegT0, Rs1: isa.RegT1, Imm: -1},
		{Op: isa.OpSUB, Rd: isa.RegT2, Rs2: isa.RegT3},
		{Op: isa.OpSLTIU, Rd: isa.RegA2, Rs1: isa.RegA3, Imm: 1},
		{Op: isa.OpSLTU, Rd: isa.RegA4, Rs2: isa.RegA5},
		{Op: isa.OpADDI, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: -16},
		{Op: isa.OpJALR, Rd: isa.RegZero, Rs1: isa.RegRA},
		{Op: isa.OpADDI},
	}
	for i, want := range checks {
		if got := isa.Decode(textWord(img, i)); got != want {
			t.Errorf("pseudo %d = %+v; want %+v", i, got, want)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"bogus a0, a1", "unknown instruction"},
		{"addi a0, a1", "wants rd, rs1, imm"},
		{"addi a0, a1, 99999", "out of 16-bit range"},
		{"lw a0, 4(bogus)", "bad base register"},
		{"j nowhere", "undefined symbol"},
		{"x: nop\nx: nop", "duplicate label"},
		{".data\nword: .word\n.text\naddi a0, zero, word", "label reference"},
		{".unknown 4", "unknown directive"},
		{".byte 300", "out of range"},
		{"9bad: nop", "invalid label"},
		{".data\n.space -1", "out of range"},
	}
	for _, c := range cases {
		_, err := Assemble("e.s", c.src)
		if err == nil {
			t.Errorf("source %q assembled; want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("file.s", "nop\nnop\nbogus\n")
	if err == nil || !strings.HasPrefix(err.Error(), "file.s:3:") {
		t.Errorf("error = %v; want file.s:3 prefix", err)
	}
}

func TestLinesMap(t *testing.T) {
	img := mustAsm(t, `
main:   nop
        li t0, 0x12345678
        nop
`)
	if img.Lines[mem.TextBase] != 2 {
		t.Errorf("line of first instruction = %d", img.Lines[mem.TextBase])
	}
	// li expands to two words, both mapping to line 3.
	if img.Lines[mem.TextBase+4] != 3 || img.Lines[mem.TextBase+8] != 3 {
		t.Error("expanded pseudo lines wrong")
	}
	if img.Lines[mem.TextBase+12] != 4 {
		t.Errorf("line of trailing nop = %d", img.Lines[mem.TextBase+12])
	}
}

func TestLabelOnOwnLineAndSameLine(t *testing.T) {
	img := mustAsm(t, `
a:
b:      nop
c: d:   nop
`)
	if img.MustSymbol("a") != img.MustSymbol("b") {
		t.Error("a and b should coincide")
	}
	if img.MustSymbol("c") != img.MustSymbol("d") {
		t.Error("c and d should coincide")
	}
	if img.MustSymbol("c") != img.MustSymbol("b")+4 {
		t.Error("c should follow b's nop")
	}
}

func TestSymbolsSorted(t *testing.T) {
	img := mustAsm(t, "z: nop\na: nop\n")
	got := img.SymbolsSorted()
	if len(got) != 2 || got[0] != "z" || got[1] != "a" {
		t.Errorf("SymbolsSorted = %v (want address order z,a)", got)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bad.s", "bogus")
}
