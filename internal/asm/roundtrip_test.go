package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bugnet/internal/isa"
)

// TestDisassembleReassembleIdentity: disassembling every instruction of an
// assembled program and reassembling the listing must reproduce the exact
// text bytes. This closes the loop between the assembler, the encoder and
// the disassembler.
func TestDisassembleReassembleIdentity(t *testing.T) {
	src := `
        .data
v:      .word 1, 2, 3
s:      .asciiz "x"
        .text
main:   li   t0, 0x12345678
        la   t1, v
        lw   t2, 8(t1)
        sw   t2, -4(sp)
        sb   t2, 3(t1)
        amoadd t3, t2, (t1)
loop:   addi t0, t0, -1
        bnez t0, loop
        call fn
        li   a7, 1
        syscall
fn:     mulh a0, t0, t2
        sltiu a1, a0, 44
        srai a2, a1, 3
        ret
`
	img := mustAsm(t, src)

	// Disassemble into a flat listing of raw instructions.
	var b strings.Builder
	b.WriteString("        .text\n")
	for off := 0; off+4 <= len(img.Text); off += 4 {
		pc := img.TextBase + uint32(off)
		w := uint32(img.Text[off]) | uint32(img.Text[off+1])<<8 |
			uint32(img.Text[off+2])<<16 | uint32(img.Text[off+3])<<24
		ins := isa.Decode(w)
		// Branches/jumps print absolute targets; rewrite them as
		// pc-relative label-free forms the assembler accepts by emitting
		// the raw word instead.
		if ins.Op.IsBranch() || ins.Op == isa.OpJAL || ins.Op == isa.OpJ {
			fmt.Fprintf(&b, "l%d: .word %d\n", off, w)
			continue
		}
		fmt.Fprintf(&b, "l%d: %s\n", off, isa.Disassemble(ins, pc))
	}
	re, err := Assemble("rt.s", b.String())
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, b.String())
	}
	if len(re.Text) != len(img.Text) {
		t.Fatalf("reassembled text %d bytes; want %d", len(re.Text), len(img.Text))
	}
	for i := range img.Text {
		if re.Text[i] != img.Text[i] {
			t.Fatalf("byte %d differs: %#x vs %#x", i, re.Text[i], img.Text[i])
		}
	}
}

// TestPropertyRandomEncodableInstructions: any random valid instruction
// disassembles to text that reassembles to the identical word (excluding
// control transfers whose operands are labels).
func TestPropertyRandomEncodableInstructions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			ins := randomNonBranch(rng)
			w := isa.MustEncode(ins)
			text := isa.Disassemble(ins, 0x400000)
			img, err := Assemble("p.s", "main: "+text+"\n")
			if err != nil {
				t.Logf("%q: %v", text, err)
				return false
			}
			got := uint32(img.Text[0]) | uint32(img.Text[1])<<8 |
				uint32(img.Text[2])<<16 | uint32(img.Text[3])<<24
			if got != w {
				t.Logf("%q: %#x -> %#x", text, w, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomNonBranch generates a random instruction whose disassembly is
// directly reassemblable (no label operands).
func randomNonBranch(rng *rand.Rand) isa.Instruction {
	for {
		op := isa.Opcode(1 + rng.Intn(isa.NumOpcodes()))
		if op.IsBranch() || op == isa.OpJAL || op == isa.OpJ {
			continue
		}
		ins := isa.Instruction{Op: op}
		if op == isa.OpSYSCALL || op == isa.OpBREAK {
			return ins // operand fields are architecturally zero
		}
		switch op.Format() {
		case isa.FormatR:
			ins.Rd = uint8(rng.Intn(isa.NumRegs))
			ins.Rs1 = uint8(rng.Intn(isa.NumRegs))
			ins.Rs2 = uint8(rng.Intn(isa.NumRegs))
		case isa.FormatI:
			ins.Rd = uint8(rng.Intn(isa.NumRegs))
			if op != isa.OpLUI { // LUI architecturally ignores rs1
				ins.Rs1 = uint8(rng.Intn(isa.NumRegs))
			}
			ins.Imm = int32(rng.Intn(1<<16)) + isa.MinImm16
		}
		return ins
	}
}
