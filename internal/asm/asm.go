// Package asm implements a two-pass assembler for the simulated ISA.
//
// The paper's evaluation runs real x86 binaries (SPEC 2000 and the Table 1
// buggy applications); our workload analogues are written in assembly for
// the ISA in internal/isa, and this assembler turns those sources into
// loadable images. The syntax is deliberately close to classic MIPS/RISC-V
// assembler syntax:
//
//	        .data
//	buf:    .space 1024          # reserve bytes
//	msg:    .asciiz "hello"
//	tbl:    .word 1, 2, handler  # words and label addresses
//	        .text
//	main:   la   a1, buf
//	        li   a2, 1024
//	        loop: ...
//	        beq  a0, zero, done
//	        j    loop
//	done:   li   a7, 1           # SYS_exit
//	        syscall
//
// Comments start with '#', "//", or ';'. Labels may appear on their own
// line or before an instruction. Supported directives: .text .data .word
// .half .byte .space .asciiz .ascii .align .globl (recorded, no-op) and
// .equ NAME, value.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bugnet/internal/isa"
	"bugnet/internal/mem"
)

// Image is an assembled, loadable program.
type Image struct {
	Name     string
	Text     []byte            // machine code, loaded at TextBase
	Data     []byte            // initialized data, loaded at DataBase
	TextBase uint32            // load address of Text
	DataBase uint32            // load address of Data
	Entry    uint32            // initial PC (label _start, else main, else TextBase)
	Symbols  map[string]uint32 // label -> absolute address
	Lines    map[uint32]int    // text address -> source line (for diagnostics)
}

// Symbol returns the address of a label, with presence indication.
func (img *Image) Symbol(name string) (uint32, bool) {
	a, ok := img.Symbols[name]
	return a, ok
}

// MustSymbol returns the address of a label, panicking if it is undefined.
// Intended for tests and experiment harnesses that reference known labels.
func (img *Image) MustSymbol(name string) uint32 {
	a, ok := img.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: image %q has no symbol %q", img.Name, name))
	}
	return a
}

// DisassembleAt renders the instruction word at pc, for crash reports,
// backtraces, and debugging output.
func (img *Image) DisassembleAt(pc uint32) string {
	off := pc - img.TextBase
	if pc < img.TextBase || int(off)+4 > len(img.Text) {
		return "<outside text>"
	}
	w := uint32(img.Text[off]) | uint32(img.Text[off+1])<<8 |
		uint32(img.Text[off+2])<<16 | uint32(img.Text[off+3])<<24
	return isa.DisassembleWord(w, pc)
}

// SymbolsSorted returns the defined labels in address order.
func (img *Image) SymbolsSorted() []string {
	names := make([]string, 0, len(img.Symbols))
	for n := range img.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ai, aj := img.Symbols[names[i]], img.Symbols[names[j]]
		if ai != aj {
			return ai < aj
		}
		return names[i] < names[j]
	})
	return names
}

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Assemble assembles source into an image. name is used in diagnostics and
// stored in the image.
func Assemble(name, source string) (*Image, error) {
	a := &assembler{
		file:     name,
		symbols:  make(map[string]uint32),
		equates:  make(map[string]int64),
		textBase: mem.TextBase,
		dataBase: mem.DataBase,
	}
	if err := a.run(source); err != nil {
		return nil, err
	}
	img := &Image{
		Name:     name,
		Text:     a.text,
		Data:     a.data,
		TextBase: a.textBase,
		DataBase: a.dataBase,
		Symbols:  a.symbols,
		Lines:    a.lines,
	}
	switch {
	case a.symbols["_start"] != 0 || hasSym(a.symbols, "_start"):
		img.Entry = a.symbols["_start"]
	case hasSym(a.symbols, "main"):
		img.Entry = a.symbols["main"]
	default:
		img.Entry = a.textBase
	}
	return img, nil
}

// MustAssemble is Assemble for embedded, known-good sources; it panics on
// error. Workload constructors use it so a broken workload fails loudly.
func MustAssemble(name, source string) *Image {
	img, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return img
}

func hasSym(m map[string]uint32, k string) bool { _, ok := m[k]; return ok }

type section int

const (
	secText section = iota
	secData
)

// item is a parsed source statement retained between the two passes.
type item struct {
	line    int
	sec     section
	addr    uint32   // assigned in pass 1
	mnem    string   // instruction mnemonic (lowercased), or "" for directives
	args    []string // operand strings
	dir     string   // directive name including '.', or ""
	expands int      // number of machine instructions this statement expands to
}

type assembler struct {
	file     string
	symbols  map[string]uint32
	equates  map[string]int64
	items    []item
	text     []byte
	data     []byte
	lines    map[uint32]int
	textBase uint32
	dataBase uint32
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) run(source string) error {
	if err := a.parse(source); err != nil {
		return err
	}
	if err := a.layout(); err != nil {
		return err
	}
	return a.emit()
}

// parse splits the source into labeled statements.
func (a *assembler) parse(source string) error {
	sec := secText
	for lineNo, raw := range strings.Split(source, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Peel off any leading labels.
		for {
			idx := labelEnd(line)
			if idx < 0 {
				break
			}
			label := strings.TrimSpace(line[:idx])
			if !validIdent(label) {
				return a.errf(lineNo+1, "invalid label %q", label)
			}
			a.items = append(a.items, item{line: lineNo + 1, sec: sec, dir: "label", args: []string{label}})
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			dir, rest := splitFirst(line)
			dir = strings.ToLower(dir)
			switch dir {
			case ".text":
				sec = secText
			case ".data":
				sec = secData
			case ".globl", ".global":
				// Recorded for compatibility; all labels are global.
			case ".equ", ".set":
				parts := splitArgs(rest)
				if len(parts) != 2 {
					return a.errf(lineNo+1, "%s wants NAME, VALUE", dir)
				}
				v, err := a.number(parts[1], lineNo+1)
				if err != nil {
					return err
				}
				a.equates[parts[0]] = v
			case ".word", ".half", ".byte", ".space", ".asciiz", ".ascii", ".align":
				a.items = append(a.items, item{line: lineNo + 1, sec: sec, dir: dir, args: splitArgs(rest)})
			default:
				return a.errf(lineNo+1, "unknown directive %s", dir)
			}
			continue
		}
		mnem, rest := splitFirst(line)
		a.items = append(a.items, item{
			line: lineNo + 1, sec: sec,
			mnem: strings.ToLower(mnem), args: splitArgs(rest),
		})
	}
	return nil
}

// layout is pass 1: assign addresses to every statement and label.
//
// Labels bind lazily to the address of the next emitted item in their
// section, so that a label immediately preceding an auto-aligning .word or
// .half points at the aligned data rather than into the padding.
func (a *assembler) layout() error {
	textPC := a.textBase
	dataPC := a.dataBase
	var pending []*item // unbound labels awaiting the next sized item

	bind := func(addr uint32, sec section) error {
		rest := pending[:0]
		for _, lab := range pending {
			if lab.sec != sec {
				rest = append(rest, lab)
				continue
			}
			name := lab.args[0]
			if _, dup := a.symbols[name]; dup {
				return a.errf(lab.line, "duplicate label %q", name)
			}
			a.symbols[name] = addr
		}
		pending = rest
		return nil
	}

	for i := range a.items {
		it := &a.items[i]
		pc := &textPC
		if it.sec == secData {
			pc = &dataPC
		}
		switch {
		case it.dir == "label":
			pending = append(pending, it)
		case it.dir != "":
			n, err := a.directiveSize(it, *pc)
			if err != nil {
				return err
			}
			it.addr = *pc
			pad := uint32(0)
			switch it.dir {
			case ".word":
				pad = padTo(*pc, 4)
			case ".half":
				pad = padTo(*pc, 2)
			case ".align":
				pad = n
			}
			if err := bind(*pc+pad, it.sec); err != nil {
				return err
			}
			*pc += n
		default:
			if it.sec != secText {
				return a.errf(it.line, "instruction %q in .data section", it.mnem)
			}
			n, err := a.instructionWords(it)
			if err != nil {
				return err
			}
			it.expands = n
			it.addr = *pc
			if err := bind(*pc, it.sec); err != nil {
				return err
			}
			*pc += uint32(n) * isa.WordSize
		}
	}
	// Labels at the end of a section bind to that section's final address.
	for _, lab := range pending {
		pc := textPC
		if lab.sec == secData {
			pc = dataPC
		}
		name := lab.args[0]
		if _, dup := a.symbols[name]; dup {
			return a.errf(lab.line, "duplicate label %q", name)
		}
		a.symbols[name] = pc
	}
	return nil
}

// directiveSize returns the byte size a data directive occupies at pc.
func (a *assembler) directiveSize(it *item, pc uint32) (uint32, error) {
	switch it.dir {
	case ".word":
		pad := padTo(pc, 4)
		return pad + 4*uint32(len(it.args)), nil
	case ".half":
		pad := padTo(pc, 2)
		return pad + 2*uint32(len(it.args)), nil
	case ".byte":
		return uint32(len(it.args)), nil
	case ".space":
		if len(it.args) != 1 {
			return 0, a.errf(it.line, ".space wants one size argument")
		}
		v, err := a.number(it.args[0], it.line)
		if err != nil {
			return 0, err
		}
		if v < 0 || v > 1<<28 {
			return 0, a.errf(it.line, ".space size %d out of range", v)
		}
		return uint32(v), nil
	case ".asciiz", ".ascii":
		if len(it.args) != 1 {
			return 0, a.errf(it.line, "%s wants one string literal", it.dir)
		}
		s, err := strconv.Unquote(it.args[0])
		if err != nil {
			return 0, a.errf(it.line, "bad string literal %s: %v", it.args[0], err)
		}
		n := uint32(len(s))
		if it.dir == ".asciiz" {
			n++
		}
		return n, nil
	case ".align":
		if len(it.args) != 1 {
			return 0, a.errf(it.line, ".align wants one argument")
		}
		v, err := a.number(it.args[0], it.line)
		if err != nil {
			return 0, err
		}
		if v < 0 || v > 12 {
			return 0, a.errf(it.line, ".align %d out of range", v)
		}
		return padTo(pc, uint32(1)<<uint(v)), nil
	}
	return 0, a.errf(it.line, "unknown directive %s", it.dir)
}

func padTo(pc, align uint32) uint32 {
	if align == 0 {
		return 0
	}
	rem := pc % align
	if rem == 0 {
		return 0
	}
	return align - rem
}

// instructionWords returns how many machine words a (pseudo)instruction
// expands to. The expansion width must not depend on label addresses (which
// are unknown during pass 1), only on literal operands.
func (a *assembler) instructionWords(it *item) (int, error) {
	switch it.mnem {
	case "li":
		if len(it.args) != 2 {
			return 0, a.errf(it.line, "li wants rd, imm")
		}
		v, err := a.number(it.args[1], it.line)
		if err != nil {
			return 0, err
		}
		if v >= isa.MinImm16 && v <= isa.MaxImm16 {
			return 1, nil
		}
		lo := int32(int16(uint16(v)))
		if lo == 0 {
			return 1, nil // lui alone
		}
		return 2, nil
	case "la":
		return 2, nil // always lui+addi so width is label-independent
	case "call", "ret", "jr", "mv", "nop", "not", "neg", "seqz", "snez",
		"subi", "beqz", "bnez", "bltz", "bgez", "bgtz", "blez", "ble", "bgt",
		"bleu", "bgtu":
		return 1, nil
	default:
		if _, ok := isa.OpcodeByName(it.mnem); !ok {
			return 0, a.errf(it.line, "unknown instruction %q", it.mnem)
		}
		return 1, nil
	}
}

// emit is pass 2: encode instructions and materialize data.
func (a *assembler) emit() error {
	a.lines = make(map[uint32]int)
	for i := range a.items {
		it := &a.items[i]
		if it.dir == "label" {
			continue
		}
		if it.dir != "" {
			if err := a.emitDirective(it); err != nil {
				return err
			}
			continue
		}
		words, err := a.encodeInstruction(it)
		if err != nil {
			return err
		}
		if len(words) != it.expands {
			return a.errf(it.line, "internal: expansion width changed between passes (%d != %d)", len(words), it.expands)
		}
		for wi, w := range words {
			addr := it.addr + uint32(wi)*isa.WordSize
			a.lines[addr] = it.line
			a.appendTo(it.sec, addr, []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)})
		}
	}
	return nil
}

func (a *assembler) emitDirective(it *item) error {
	pc := it.addr
	switch it.dir {
	case ".word":
		pc += padTo(pc, 4)
		for _, arg := range it.args {
			v, err := a.value(arg, it.line)
			if err != nil {
				return err
			}
			a.appendTo(it.sec, pc, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
			pc += 4
		}
	case ".half":
		pc += padTo(pc, 2)
		for _, arg := range it.args {
			v, err := a.value(arg, it.line)
			if err != nil {
				return err
			}
			if v < -(1<<15) || v > 1<<16-1 {
				return a.errf(it.line, ".half value %d out of range", v)
			}
			a.appendTo(it.sec, pc, []byte{byte(v), byte(v >> 8)})
			pc += 2
		}
	case ".byte":
		for _, arg := range it.args {
			v, err := a.value(arg, it.line)
			if err != nil {
				return err
			}
			if v < -128 || v > 255 {
				return a.errf(it.line, ".byte value %d out of range", v)
			}
			a.appendTo(it.sec, pc, []byte{byte(v)})
			pc++
		}
	case ".space":
		v, _ := a.number(it.args[0], it.line)
		a.appendTo(it.sec, pc, make([]byte, v))
	case ".asciiz", ".ascii":
		s, _ := strconv.Unquote(it.args[0])
		b := []byte(s)
		if it.dir == ".asciiz" {
			b = append(b, 0)
		}
		a.appendTo(it.sec, pc, b)
	case ".align":
		// Padding was accounted for in layout; emit the zero bytes.
		v, _ := a.number(it.args[0], it.line)
		a.appendTo(it.sec, pc, make([]byte, padTo(pc, uint32(1)<<uint(v))))
	}
	return nil
}

// appendTo writes bytes at the absolute address into the proper section
// buffer, growing it as needed (directives may leave alignment gaps).
func (a *assembler) appendTo(sec section, addr uint32, b []byte) {
	buf, base := &a.text, a.textBase
	if sec == secData {
		buf, base = &a.data, a.dataBase
	}
	off := int(addr - base)
	if need := off + len(b); need > len(*buf) {
		*buf = append(*buf, make([]byte, need-len(*buf))...)
	}
	copy((*buf)[off:], b)
}
