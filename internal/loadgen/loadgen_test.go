package loadgen

import (
	"context"
	"testing"
	"time"

	"bugnet/internal/cluster"
	"bugnet/internal/triage"
)

func TestCorpusDistinct(t *testing.T) {
	reg := triage.NewImageRegistry()
	blobs, err := Corpus(5, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 5 {
		t.Fatalf("corpus size %d", len(blobs))
	}
	seen := map[string]bool{}
	for i, b := range blobs {
		if seen[string(b)] {
			t.Fatalf("corpus blob %d duplicates an earlier one", i)
		}
		seen[string(b)] = true
	}
	if reg.Len() != 5 {
		t.Fatalf("registry has %d images, want 5", reg.Len())
	}
}

// TestRunAgainstLocalCluster drives a short real run through the full
// coordinator path and checks the bookkeeping adds up.
func TestRunAgainstLocalCluster(t *testing.T) {
	reg := triage.NewImageRegistry()
	corpus, err := Corpus(4, reg)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := cluster.SpawnLocal(2, cluster.SpawnOptions{
		BaseDir:     t.TempDir(),
		Resolver:    reg.Resolve,
		Replication: 2,
		WriteQuorum: 1,
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	res, err := Run(context.Background(), Options{
		Targets:       lc.URLs(),
		ScrapeTargets: lc.URLs()[:1], // shared in-process metrics registry
		Corpus:        corpus,
		RPS:           200,
		Concurrency:   4,
		Duration:      500 * time.Millisecond,
		DrainTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if res.Errors5xx != 0 || res.TransportErrors != 0 {
		t.Fatalf("errors during clean run: %+v", res)
	}
	if res.Created+res.Duplicate+res.Shed+res.Errors4xx+res.Cancelled != res.Sent {
		t.Fatalf("accounting does not add up: %+v", res)
	}
	// 4 distinct archives: the first sends create, the rest dedupe.
	if res.Created == 0 || res.Duplicate == 0 {
		t.Fatalf("expected both creates and duplicates: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("latency quantiles inconsistent: p50=%v p99=%v", res.P50, res.P99)
	}
}
