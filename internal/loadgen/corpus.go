// Package loadgen replays a synthetic crash corpus against a bugnet
// cluster at a configured rate, measuring what a fleet rollout would:
// ingest latency quantiles under admission control and forwarding, and
// replay-verdict throughput out the back. It is the load harness behind
// cmd/bugnet-loadgen and the CI cluster-smoke job.
package loadgen

import (
	"fmt"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/kernel"
	"bugnet/internal/report"
	"bugnet/internal/triage"
)

// corpusTemplate is the crash demo with a parameterized build stamp in
// the text segment: every variant is a distinct binary (distinct
// BinaryID, so each registers separately and resolves for replay) whose
// report packs to a distinct archive (distinct content address), while
// all of them crash identically — a null load at boom. That models the
// fleet case: many builds, one bug family.
const corpusTemplate = `
        .data
tbl:    .word 3, 5, 7, 0
        .text
main:   li   s5, %d
        la   t0, tbl
        li   s0, 0
sum:    lw   t1, (t0)
        beqz t1, done
        add  s0, s0, t1
        addi t0, t0, 4
        j    sum
done:   la   t2, tbl
        lw   t3, 12(t2)
boom:   lw   a0, (t3)
`

// Corpus records n distinct crash archives and registers their images so
// any triage service using reg can replay them.
func Corpus(n int, reg *triage.ImageRegistry) ([][]byte, error) {
	if n <= 0 {
		n = 1
	}
	blobs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(corpusTemplate, i+1)
		img, err := asm.Assemble(fmt.Sprintf("corpus%d.s", i), src)
		if err != nil {
			return nil, fmt.Errorf("loadgen: assemble corpus %d: %w", i, err)
		}
		res, rep, _ := core.Record(img, kernel.Config{}, core.Config{IntervalLength: 16})
		if res.Crash == nil {
			return nil, fmt.Errorf("loadgen: corpus %d did not crash", i)
		}
		blob, err := report.Pack(rep)
		if err != nil {
			return nil, fmt.Errorf("loadgen: pack corpus %d: %w", i, err)
		}
		if reg != nil {
			reg.Register(img)
		}
		blobs = append(blobs, blob)
	}
	return blobs, nil
}
