package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options configures one load run.
type Options struct {
	// Targets are node base URLs; uploads round-robin across them so
	// every node exercises its coordinator path. Required.
	Targets []string
	// Corpus is the set of archives to replay, cycled. Required.
	Corpus [][]byte
	// RPS is the aggregate upload rate (default 50).
	RPS float64
	// Concurrency is the sender pool (default 8).
	Concurrency int
	// Duration is how long to send (default 10s).
	Duration time.Duration
	// ScrapeTargets are the /metrics endpoints consulted for verdict
	// throughput (default Targets). In-process clusters share one metrics
	// registry, so their callers scrape a single node to avoid counting
	// the same global totals once per node.
	ScrapeTargets []string
	// DrainTimeout bounds the post-send wait for replay queues to empty
	// before throughput is read (default 30s; 0 keeps the default, use a
	// negative value to skip draining).
	DrainTimeout time.Duration
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

// Result is what one run measured.
type Result struct {
	Sent      int `json:"sent"`
	Created   int `json:"created"`
	Duplicate int `json:"duplicate"`
	// Shed counts 429s — admission control working, not failure.
	Shed            int `json:"shed"`
	Errors4xx       int `json:"errors_4xx"`
	Errors5xx       int `json:"errors_5xx"`
	TransportErrors int `json:"transport_errors"`
	// Cancelled counts in-flight requests cut off by the run deadline —
	// an artifact of stopping, not a server failure.
	Cancelled int `json:"cancelled"`

	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`

	Elapsed time.Duration `json:"elapsed_ns"`
	// AchievedRPS is accepted uploads (created+duplicate) per second.
	AchievedRPS float64 `json:"achieved_rps"`
	// Verdicts is the replay-verdict delta across the run (drained).
	Verdicts       int64   `json:"verdicts"`
	VerdictsPerSec float64 `json:"verdicts_per_sec"`
}

func (r *Result) String() string {
	return fmt.Sprintf(
		"sent=%d created=%d dup=%d shed=%d 4xx=%d 5xx=%d transport=%d cancelled=%d\n"+
			"ingest p50=%s p99=%s max=%s achieved=%.1f rps\n"+
			"verdicts=%d (%.1f/s) over %s",
		r.Sent, r.Created, r.Duplicate, r.Shed, r.Errors4xx, r.Errors5xx, r.TransportErrors, r.Cancelled,
		r.P50, r.P99, r.Max, r.AchievedRPS,
		r.Verdicts, r.VerdictsPerSec, r.Elapsed.Round(time.Millisecond))
}

// Run drives the corpus at the configured rate until Duration elapses or
// ctx is cancelled, then waits for the replay queues to drain and reads
// verdict throughput from /metrics.
func Run(ctx context.Context, opt Options) (*Result, error) {
	if len(opt.Targets) == 0 {
		return nil, errors.New("loadgen: no targets")
	}
	if len(opt.Corpus) == 0 {
		return nil, errors.New("loadgen: empty corpus")
	}
	if opt.RPS <= 0 {
		opt.RPS = 50
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 8
	}
	if opt.Duration <= 0 {
		opt.Duration = 10 * time.Second
	}
	scrape := opt.ScrapeTargets
	if len(scrape) == 0 {
		scrape = opt.Targets
	}
	drain := opt.DrainTimeout
	if drain == 0 {
		drain = 30 * time.Second
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	verdictsBefore, _ := scrapeSum(client, scrape, "bugnet_triage_verdicts_total")

	res := &Result{}
	var mu sync.Mutex
	var latencies []time.Duration

	runCtx, cancel := context.WithTimeout(ctx, opt.Duration)
	defer cancel()

	// The pacer hands sequence numbers to the sender pool at RPS. The
	// channel buffer absorbs scheduler jitter; when the pool is saturated
	// the pacer blocks, so measured latency degrades before offered load
	// runs away from the cluster.
	jobs := make(chan int, opt.Concurrency)
	interval := time.Duration(float64(time.Second) / opt.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := range jobs {
				target := opt.Targets[seq%len(opt.Targets)]
				blob := opt.Corpus[seq%len(opt.Corpus)]
				t0 := time.Now()
				status, err := postReport(runCtx, client, target, blob)
				d := time.Since(t0)
				mu.Lock()
				res.Sent++
				switch {
				case err != nil:
					if runCtx.Err() != nil {
						res.Cancelled++
					} else {
						res.TransportErrors++
					}
				case status == http.StatusCreated:
					res.Created++
					latencies = append(latencies, d)
				case status == http.StatusOK:
					res.Duplicate++
					latencies = append(latencies, d)
				case status == http.StatusTooManyRequests:
					res.Shed++
				case status >= 500:
					res.Errors5xx++
				default:
					res.Errors4xx++
				}
				mu.Unlock()
			}
		}()
	}

	ticker := time.NewTicker(interval)
pace:
	for seq := 0; ; seq++ {
		select {
		case <-runCtx.Done():
			break pace
		case <-ticker.C:
			select {
			case jobs <- seq:
			case <-runCtx.Done():
				break pace
			}
		}
	}
	ticker.Stop()
	close(jobs)
	wg.Wait()
	res.Elapsed = time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = quantile(latencies, 0.50)
	res.P99 = quantile(latencies, 0.99)
	if len(latencies) > 0 {
		res.Max = latencies[len(latencies)-1]
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.AchievedRPS = float64(res.Created+res.Duplicate) / secs
	}

	if drain > 0 {
		waitDrained(ctx, client, scrape, drain)
	}
	verdictsAfter, err := scrapeSum(client, scrape, "bugnet_triage_verdicts_total")
	if err == nil {
		res.Verdicts = verdictsAfter - verdictsBefore
		if secs := time.Since(start).Seconds(); secs > 0 {
			res.VerdictsPerSec = float64(res.Verdicts) / secs
		}
	}
	return res, nil
}

func postReport(ctx context.Context, client *http.Client, target string, blob []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(target, "/")+"/api/v1/reports", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, nil
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// waitDrained polls the replay queue gauge until every scrape target
// reports empty, the timeout passes, or ctx ends.
func waitDrained(ctx context.Context, client *http.Client, targets []string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		depth, err := scrapeSum(client, targets, "bugnet_triage_queue_depth")
		if err == nil && depth == 0 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// scrapeSum sums every sample of one metric family across targets.
func scrapeSum(client *http.Client, targets []string, name string) (int64, error) {
	var total int64
	var lastErr error
	seen := false
	for _, t := range targets {
		v, err := scrapeOne(client, t, name)
		if err != nil {
			lastErr = err
			continue
		}
		seen = true
		total += v
	}
	if !seen {
		return 0, lastErr
	}
	return total, nil
}

func scrapeOne(client *http.Client, target, name string) (int64, error) {
	resp, err := client.Get(strings.TrimRight(target, "/") + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, err
	}
	var total int64
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		// Accept "name 3" and `name{label="x"} 3`; reject longer names
		// sharing the prefix.
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		total += int64(v)
	}
	return total, nil
}
