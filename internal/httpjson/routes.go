package httpjson

import (
	"net/http"
	"strings"
)

// APIPrefix is the current versioned API prefix. Legacy unprefixed paths
// remain mounted as thin aliases for one release; new clients must use
// the versioned surface.
const APIPrefix = "/api/v1"

// Handle registers one handler under both the versioned path and its
// legacy unprefixed alias. pattern is "METHOD /path". Shared by every
// BugNet HTTP surface so the whole API moves versions in one place.
func Handle(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("httpjson: pattern must be \"METHOD /path\": " + pattern)
	}
	mux.HandleFunc(method+" "+APIPrefix+path, h)
	mux.HandleFunc(pattern, h)
}
