// Package httpjson holds the JSON response helpers shared by the BugNet
// HTTP surfaces (triage API, remote-debug API). Keeping them in one place
// keeps the error envelope — {"error": msg} — wire-compatible across
// endpoints; clients like bugnet-debug parse it uniformly.
package httpjson

import (
	"encoding/json"
	"net/http"
)

// Write encodes v as the response body with the given status code.
func Write(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Error writes the shared error envelope.
func Error(w http.ResponseWriter, code int, msg string) {
	Write(w, code, map[string]string{"error": msg})
}
