// Package httpjson holds the JSON response helpers shared by the BugNet
// HTTP surfaces (triage API, remote-debug API, cluster proxy). Keeping
// them in one place keeps the error envelope wire-compatible across
// endpoints; clients like bugnet-debug parse it uniformly.
//
// Every failure is one envelope:
//
//	{"error": {"code": "not_found", "message": "...", "request_id": "..."}}
//
// The code is a stable machine-readable string from the small set below —
// clients branch on it, never on the human-readable message. The
// request_id echoes the X-Request-ID the Instrument middleware stamped,
// so a client-side error report names the exact server-side log lines.
package httpjson

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Stable error codes. These are API surface: clients switch on them, so
// renaming one is a breaking change.
const (
	// CodeBadRequest: the request itself is malformed (bad JSON, bad
	// parameters, an archive that does not decode).
	CodeBadRequest = "bad_request"
	// CodeNotFound: the named report, bucket, or session does not exist.
	CodeNotFound = "not_found"
	// CodeTooLarge: the upload exceeds the per-request byte limit.
	CodeTooLarge = "too_large"
	// CodeOverloaded: admission control shed the request; retry after the
	// Retry-After header's delay.
	CodeOverloaded = "overloaded"
	// CodeReplicaUnavailable: the cluster could not reach enough replica
	// owners to satisfy the operation (quorum write or replicated read).
	CodeReplicaUnavailable = "replica_unavailable"
	// CodeUnprocessable: the request is well-formed but names something
	// the server cannot act on (undecodable report, unknown binary).
	CodeUnprocessable = "unprocessable"
	// CodeUnavailable: the service is shutting down or degraded.
	CodeUnavailable = "unavailable"
	// CodeInternal: our fault — disk failure, unexpected error. Clients
	// should retry; the evidence was not rejected.
	CodeInternal = "internal"
)

// ErrorBody is the inner object of the error envelope.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// ErrorEnvelope is the standardized failure response body.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Write encodes v as the response body with the given status code.
func Write(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Fail writes the standardized error envelope. The request supplies the
// request id (stamped by Instrument; empty outside the middleware) so
// every failure names its server-side log lines.
func Fail(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	var id string
	if r != nil {
		id = RequestID(r.Context())
	}
	Write(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: msg, RequestID: id}})
}

// Overloaded sheds one request: 429 with a Retry-After header telling the
// client when the spool is expected to have drained. The delay is rounded
// up to whole seconds (the header's unit); zero or negative becomes 1.
func Overloaded(w http.ResponseWriter, r *http.Request, retryAfter time.Duration, msg string) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	Fail(w, r, http.StatusTooManyRequests, CodeOverloaded, msg)
}

// CodeForStatus maps an HTTP status to the default error code handlers
// use when they have nothing more specific — it keeps proxied upstream
// failures inside the envelope's code vocabulary.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	}
	if status >= 500 {
		return CodeInternal
	}
	return CodeBadRequest
}

// DecodeError parses an error-envelope body (as produced by Fail),
// returning the inner body. Legacy {"error": "msg"} bodies from pre-v1
// servers decode with the message only, so mixed-version fleets keep
// readable diagnostics. ok reports whether anything was parsed.
func DecodeError(data []byte) (ErrorBody, bool) {
	var env ErrorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && (env.Error.Message != "" || env.Error.Code != "") {
		return env.Error, true
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &legacy); err == nil && legacy.Error != "" {
		return ErrorBody{Message: legacy.Error}, true
	}
	return ErrorBody{}, false
}
