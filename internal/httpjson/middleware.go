package httpjson

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"bugnet/internal/obs"
)

var (
	mReqs = obs.Default.CounterVec("bugnet_http_requests_total",
		"HTTP requests served, by response status code.", "code")
	mLatency = obs.Default.Histogram("bugnet_http_request_seconds",
		"HTTP request service time.")
	mInFlight = obs.Default.Gauge("bugnet_http_in_flight",
		"HTTP requests currently being served.")
)

type ctxKey int

const requestIDKey ctxKey = 0

// RequestID returns the request id stamped by Instrument, or "" when the
// handler runs outside the middleware (direct tests).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter captures the response code for the metrics label and the
// access log line.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Instrument wraps a handler with the observability boundary: a request
// id in the context and X-Request-ID header, request/latency/in-flight
// metrics, and one structured access-log line per request. A nil logger
// keeps the metrics and ids but logs nothing.
func Instrument(next http.Handler, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		mInFlight.Inc()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
		mInFlight.Dec()
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		elapsed := time.Since(start)
		mReqs.With(statusText(sw.code)).Inc()
		mLatency.Observe(elapsed)
		if logger != nil {
			logger.Info("http request",
				"request_id", id,
				"method", r.Method,
				"path", r.URL.Path,
				"code", sw.code,
				"duration", elapsed,
				"remote", r.RemoteAddr)
		}
	})
}

// statusText renders common status codes without allocating; the label
// set stays bounded because codes come from our own handlers.
func statusText(code int) string {
	switch code {
	case 200:
		return "200"
	case 201:
		return "201"
	case 202:
		return "202"
	case 204:
		return "204"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 409:
		return "409"
	case 413:
		return "413"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	}
	return strconv.Itoa(code)
}
