package httpjson

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestFailEnvelope(t *testing.T) {
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodGet, "/x", nil)
	Fail(w, r, http.StatusNotFound, CodeNotFound, "no such thing")
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d", w.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeNotFound || env.Error.Message != "no such thing" {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestOverloadedRetryAfter(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"}, // rounds up: never tell a client to retry early
		{10 * time.Millisecond, "1"},   // floor of 1s
		{3 * time.Second, "3"},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/reports", nil)
		Overloaded(w, r, c.d, "busy")
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("%v: status %d", c.d, w.Code)
		}
		if got := w.Header().Get("Retry-After"); got != c.want {
			t.Fatalf("%v: Retry-After = %q, want %q", c.d, got, c.want)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != CodeOverloaded {
			t.Fatalf("%v: code = %q", c.d, env.Error.Code)
		}
	}
}

func TestDecodeErrorBothShapes(t *testing.T) {
	body, ok := DecodeError([]byte(`{"error":{"code":"not_found","message":"gone","request_id":"r1"}}`))
	if !ok || body.Code != "not_found" || body.Message != "gone" || body.RequestID != "r1" {
		t.Fatalf("new shape: ok=%v body=%+v", ok, body)
	}
	body, ok = DecodeError([]byte(`{"error":"legacy message"}`))
	if !ok || body.Message != "legacy message" {
		t.Fatalf("legacy shape: ok=%v body=%+v", ok, body)
	}
	if _, ok := DecodeError([]byte("not json at all")); ok {
		t.Fatal("junk decoded as an error body")
	}
	if _, ok := DecodeError(nil); ok {
		t.Fatal("empty body decoded as an error body")
	}
}

func TestCodeForStatus(t *testing.T) {
	cases := map[int]string{
		http.StatusNotFound:              CodeNotFound,
		http.StatusTooManyRequests:       CodeOverloaded,
		http.StatusBadRequest:            CodeBadRequest,
		http.StatusServiceUnavailable:    CodeUnavailable,
		http.StatusInternalServerError:   CodeInternal,
		http.StatusRequestEntityTooLarge: CodeTooLarge,
	}
	for status, want := range cases {
		if got := CodeForStatus(status); got != want {
			t.Errorf("CodeForStatus(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestHandleRegistersBothSurfaces(t *testing.T) {
	mux := http.NewServeMux()
	Handle(mux, "GET /things/{id}", func(w http.ResponseWriter, r *http.Request) {
		Write(w, http.StatusOK, map[string]string{"id": r.PathValue("id")})
	})
	for _, path := range []string{"/things/42", "/api/v1/things/42"} {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: %d", path, w.Code)
		}
		var got map[string]string
		if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil || got["id"] != "42" {
			t.Fatalf("GET %s: body %s", path, w.Body.String())
		}
	}
}
