package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeTableComplete(t *testing.T) {
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		if opTable[op].name == "" {
			t.Errorf("opcode %d has no table entry", op)
		}
	}
}

func TestOpcodeByNameRoundTrip(t *testing.T) {
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v; want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpcodeByName("nosuchop"); ok {
		t.Error("OpcodeByName accepted an unknown mnemonic")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instruction{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSUB, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: OpADDI, Rd: 10, Rs1: 11, Imm: -1},
		{Op: OpADDI, Rd: 10, Rs1: 11, Imm: MaxImm16},
		{Op: OpADDI, Rd: 10, Rs1: 11, Imm: MinImm16},
		{Op: OpLUI, Rd: 5, Imm: 0x7FFF},
		{Op: OpLW, Rd: 4, Rs1: 2, Imm: -8},
		{Op: OpSW, Rd: 4, Rs1: 2, Imm: 12},
		{Op: OpSB, Rd: 7, Rs1: 8, Imm: 1023},
		{Op: OpAMOSWAP, Rd: 9, Rs1: 10, Rs2: 11},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -4},
		{Op: OpBNE, Rs1: 3, Rs2: 4, Imm: 32764},
		{Op: OpJAL, Imm: 4 * 100},
		{Op: OpJ, Imm: -4 * 1000},
		{Op: OpJALR, Rd: 1, Rs1: 5, Imm: 0},
		{Op: OpSYSCALL},
		{Op: OpBREAK},
	}
	for _, ins := range cases {
		w, err := Encode(ins)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", ins, err)
		}
		got := Decode(w)
		if got != ins {
			t.Errorf("round trip %+v -> %#08x -> %+v", ins, w, got)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Instruction{
		{Op: OpInvalid},
		{Op: numOpcodes},
		{Op: OpADD, Rd: 32},
		{Op: OpADDI, Rd: 1, Imm: MaxImm16 + 1},
		{Op: OpADDI, Rd: 1, Imm: MinImm16 - 1},
		{Op: OpBEQ, Imm: 2},                       // unaligned branch
		{Op: OpJAL, Imm: 6},                       // unaligned jump
		{Op: OpJAL, Imm: (MaxImm26 + 1) * 4},      // too far forward
		{Op: OpJ, Imm: (MinImm26 - 1) * WordSize}, // too far backward
	}
	for _, ins := range bad {
		if _, err := Encode(ins); err == nil {
			t.Errorf("Encode(%+v) succeeded; want error", ins)
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	w := uint32(numOpcodes) << opShift
	if got := Decode(w); got.Op != OpInvalid {
		t.Errorf("Decode of unknown opcode = %+v; want OpInvalid", got)
	}
}

// randomInstruction builds a random, encodable instruction for the property
// round-trip test.
func randomInstruction(r *rand.Rand) Instruction {
	for {
		op := Opcode(1 + r.Intn(int(numOpcodes)-1))
		ins := Instruction{Op: op}
		switch op.Format() {
		case FormatR:
			ins.Rd = uint8(r.Intn(NumRegs))
			ins.Rs1 = uint8(r.Intn(NumRegs))
			ins.Rs2 = uint8(r.Intn(NumRegs))
		case FormatI:
			ins.Rd = uint8(r.Intn(NumRegs))
			ins.Rs1 = uint8(r.Intn(NumRegs))
			ins.Imm = int32(r.Intn(1<<16)) + MinImm16
		case FormatB:
			ins.Rs1 = uint8(r.Intn(NumRegs))
			ins.Rs2 = uint8(r.Intn(NumRegs))
			ins.Imm = int32(r.Intn(1<<14))*4 + MinImm16 + 1
			ins.Imm -= ins.Imm % 4 // align; stays in range
			if ins.Imm < MinImm16 {
				continue
			}
		case FormatJ:
			ins.Imm = (int32(r.Intn(1<<26)) + MinImm26) * WordSize
		}
		return ins
	}
}

func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 64; i++ {
			ins := randomInstruction(r)
			w, err := Encode(ins)
			if err != nil {
				t.Logf("unexpected encode error for %+v: %v", ins, err)
				return false
			}
			if Decode(w) != ins {
				t.Logf("round trip failed: %+v -> %#08x -> %+v", ins, w, Decode(w))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Opcode]int{
		OpLW: 4, OpLH: 2, OpLHU: 2, OpLB: 1, OpLBU: 1,
		OpSW: 4, OpSH: 2, OpSB: 1,
		OpAMOSWAP: 4, OpAMOADD: 4,
		OpADD: 0, OpJAL: 0, OpSYSCALL: 0,
	}
	for op, want := range cases {
		if got := op.MemBytes(); got != want {
			t.Errorf("%v.MemBytes() = %d; want %d", op, got, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !OpLW.IsLoad() || OpSW.IsLoad() || OpAMOADD.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpSB.IsStore() || OpLB.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !OpAMOSWAP.IsAMO() || OpLW.IsAMO() {
		t.Error("IsAMO misclassifies")
	}
	if !OpBEQ.IsBranch() || OpJAL.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !OpJAL.IsJump() || !OpJALR.IsJump() || OpBEQ.IsJump() {
		t.Error("IsJump misclassifies")
	}
}

func TestRegNames(t *testing.T) {
	if RegName(RegSP) != "sp" || RegName(RegA0) != "a0" || RegName(RegZero) != "zero" {
		t.Error("unexpected conventional register names")
	}
	for i := uint8(0); i < NumRegs; i++ {
		r, ok := RegByName(RegName(i))
		if !ok || r != i {
			t.Errorf("RegByName(RegName(%d)) = %d, %v", i, r, ok)
		}
	}
	if r, ok := RegByName("r17"); !ok || r != 17 {
		t.Error("raw register name r17 not resolved")
	}
	if r, ok := RegByName("fp"); !ok || r != RegS0 {
		t.Error("fp alias not resolved")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName accepted unknown name")
	}
}

func TestDisassemble(t *testing.T) {
	cases := []struct {
		ins  Instruction
		pc   uint32
		want string
	}{
		{Instruction{Op: OpADD, Rd: 10, Rs1: 11, Rs2: 12}, 0, "add a0, a1, a2"},
		{Instruction{Op: OpADDI, Rd: 2, Rs1: 2, Imm: -16}, 0, "addi sp, sp, -16"},
		{Instruction{Op: OpLW, Rd: 10, Rs1: 2, Imm: 8}, 0, "lw a0, 8(sp)"},
		{Instruction{Op: OpSW, Rd: 10, Rs1: 2, Imm: 8}, 0, "sw a0, 8(sp)"},
		{Instruction{Op: OpAMOSWAP, Rd: 10, Rs1: 11, Rs2: 12}, 0, "amoswap a0, a2, (a1)"},
		{Instruction{Op: OpBEQ, Rs1: 10, Rs2: 0, Imm: 8}, 0x100, "beq a0, zero, 0x10c"},
		{Instruction{Op: OpJAL, Imm: 0x20}, 0x400000, "jal 0x400024"},
		{Instruction{Op: OpSYSCALL}, 0, "syscall"},
		{Instruction{Op: OpInvalid}, 0, "invalid"},
	}
	for _, c := range cases {
		if got := Disassemble(c.ins, c.pc); got != c.want {
			t.Errorf("Disassemble(%+v) = %q; want %q", c.ins, got, c.want)
		}
	}
}

func TestDisassembleWordAllOpcodes(t *testing.T) {
	// Every defined opcode must disassemble to text mentioning its mnemonic.
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		ins := Instruction{Op: op}
		w := MustEncode(ins)
		text := DisassembleWord(w, 0x1000)
		if !strings.HasPrefix(text, op.String()) {
			t.Errorf("opcode %v disassembles to %q", op, text)
		}
	}
}
