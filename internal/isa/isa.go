// Package isa defines the instruction set architecture of the simulated
// 32-bit RISC machine that the BugNet reproduction records and replays.
//
// The paper evaluates BugNet on x86 binaries instrumented with Pin; BugNet
// itself only consumes the architecturally visible stream of committed
// instructions (program counter, register file, load/store values). Any
// 32-bit ISA with word and sub-word memory accesses exercises the same
// first-load logging, L-Count and dictionary machinery, so this package
// defines a compact RISC ISA that is easy to assemble, decode and interpret
// deterministically.
//
// Encoding is a fixed 32-bit word:
//
//	R-type:  op[31:26] rd[25:21] rs1[20:16] rs2[15:11] 0[10:0]
//	I-type:  op[31:26] rd[25:21] rs1[20:16] imm16[15:0]   (imm sign-extended)
//	B-type:  op[31:26] rs1[25:21] rs2[20:16] imm16[15:0]  (byte offset from PC+4)
//	J-type:  op[31:26] imm26[25:0]                        (byte offset/4 from PC+4)
//
// JAL always links into register ra (r1); J is JAL without the link.
package isa

import "fmt"

// WordSize is the architectural word size in bytes.
const WordSize = 4

// NumRegs is the number of general-purpose registers. Register 0 is
// hardwired to zero, as in MIPS and RISC-V.
const NumRegs = 32

// Architectural register indices with conventional roles. The names follow
// the RISC-V calling convention so assembly sources read familiarly.
const (
	RegZero = 0 // hardwired zero
	RegRA   = 1 // return address (link register of JAL/CALL)
	RegSP   = 2 // stack pointer
	RegGP   = 3 // global pointer
	RegTP   = 4 // thread pointer
	RegT0   = 5 // temporaries t0..t2
	RegT1   = 6
	RegT2   = 7
	RegS0   = 8 // saved s0/fp
	RegS1   = 9
	RegA0   = 10 // arguments / return values a0..a7
	RegA1   = 11
	RegA2   = 12
	RegA3   = 13
	RegA4   = 14
	RegA5   = 15
	RegA6   = 16
	RegA7   = 17 // syscall number
	RegS2   = 18 // saved s2..s11
	RegT3   = 28 // temporaries t3..t6
)

// Opcode identifies an instruction operation.
type Opcode uint8

// Opcodes. The numeric values are part of the binary encoding and must not
// be reordered; the assembler, disassembler, and CPU all share them.
const (
	OpInvalid Opcode = iota

	// R-type register-register ALU operations.
	OpADD
	OpSUB
	OpMUL
	OpMULH
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU

	// I-type ALU operations with a 16-bit signed immediate.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLTI
	OpSLTIU
	OpSLLI
	OpSRLI
	OpSRAI
	OpLUI // rd = imm16 << 16

	// Loads: rd = mem[rs1+imm].
	OpLW
	OpLH
	OpLHU
	OpLB
	OpLBU

	// Stores: mem[rs1+imm] = rd (rd field holds the source register).
	OpSW
	OpSH
	OpSB

	// Atomics (R-type): rd = mem[rs1]; mem[rs1] = f(old, rs2). The whole
	// operation is a single sequentially consistent memory operation.
	OpAMOSWAP
	OpAMOADD

	// Branches (B-type): compare rs1, rs2; taken target = PC + 4 + imm.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL  // J-type: ra = PC + 4; PC = PC + 4 + imm26*4
	OpJ    // J-type: PC = PC + 4 + imm26*4
	OpJALR // I-type: rd = PC + 4; PC = (rs1 + imm) &^ 3

	// System.
	OpSYSCALL // service number in a7, args in a0..a2, result in a0
	OpBREAK   // explicit trap: faults the executing thread

	numOpcodes // must remain last
)

// NumOpcodes reports how many opcodes the ISA defines (excluding OpInvalid).
func NumOpcodes() int { return int(numOpcodes) - 1 }

// Format describes an instruction's encoding format.
type Format uint8

// Encoding formats.
const (
	FormatR Format = iota // rd, rs1, rs2
	FormatI               // rd, rs1, imm16
	FormatB               // rs1, rs2, imm16
	FormatJ               // imm26
)

type opInfo struct {
	name   string
	format Format
}

var opTable = [numOpcodes]opInfo{
	OpInvalid: {"invalid", FormatR},

	OpADD:   {"add", FormatR},
	OpSUB:   {"sub", FormatR},
	OpMUL:   {"mul", FormatR},
	OpMULH:  {"mulh", FormatR},
	OpMULHU: {"mulhu", FormatR},
	OpDIV:   {"div", FormatR},
	OpDIVU:  {"divu", FormatR},
	OpREM:   {"rem", FormatR},
	OpREMU:  {"remu", FormatR},
	OpAND:   {"and", FormatR},
	OpOR:    {"or", FormatR},
	OpXOR:   {"xor", FormatR},
	OpSLL:   {"sll", FormatR},
	OpSRL:   {"srl", FormatR},
	OpSRA:   {"sra", FormatR},
	OpSLT:   {"slt", FormatR},
	OpSLTU:  {"sltu", FormatR},

	OpADDI:  {"addi", FormatI},
	OpANDI:  {"andi", FormatI},
	OpORI:   {"ori", FormatI},
	OpXORI:  {"xori", FormatI},
	OpSLTI:  {"slti", FormatI},
	OpSLTIU: {"sltiu", FormatI},
	OpSLLI:  {"slli", FormatI},
	OpSRLI:  {"srli", FormatI},
	OpSRAI:  {"srai", FormatI},
	OpLUI:   {"lui", FormatI},

	OpLW:  {"lw", FormatI},
	OpLH:  {"lh", FormatI},
	OpLHU: {"lhu", FormatI},
	OpLB:  {"lb", FormatI},
	OpLBU: {"lbu", FormatI},

	OpSW: {"sw", FormatI},
	OpSH: {"sh", FormatI},
	OpSB: {"sb", FormatI},

	OpAMOSWAP: {"amoswap", FormatR},
	OpAMOADD:  {"amoadd", FormatR},

	OpBEQ:  {"beq", FormatB},
	OpBNE:  {"bne", FormatB},
	OpBLT:  {"blt", FormatB},
	OpBGE:  {"bge", FormatB},
	OpBLTU: {"bltu", FormatB},
	OpBGEU: {"bgeu", FormatB},

	OpJAL:  {"jal", FormatJ},
	OpJ:    {"j", FormatJ},
	OpJALR: {"jalr", FormatI},

	OpSYSCALL: {"syscall", FormatR},
	OpBREAK:   {"break", FormatR},
}

// String returns the assembler mnemonic for the opcode.
func (op Opcode) String() string {
	if op >= numOpcodes {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Format returns the encoding format of the opcode.
func (op Opcode) Format() Format {
	if op >= numOpcodes {
		return FormatR
	}
	return opTable[op].format
}

// Valid reports whether op names a defined instruction.
func (op Opcode) Valid() bool { return op > OpInvalid && op < numOpcodes }

// IsLoad reports whether op reads memory as its primary effect (LW/LH/LHU/
// LB/LBU). Atomics are reported separately by IsAMO.
func (op Opcode) IsLoad() bool { return op >= OpLW && op <= OpLBU }

// IsStore reports whether op writes memory as its primary effect (SW/SH/SB).
func (op Opcode) IsStore() bool { return op >= OpSW && op <= OpSB }

// IsAMO reports whether op is an atomic read-modify-write.
func (op Opcode) IsAMO() bool { return op == OpAMOSWAP || op == OpAMOADD }

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool { return op >= OpBEQ && op <= OpBGEU }

// IsJump reports whether op unconditionally transfers control.
func (op Opcode) IsJump() bool { return op == OpJAL || op == OpJ || op == OpJALR }

// MemBytes returns the access width in bytes of a load/store/AMO opcode,
// and 0 for non-memory opcodes.
func (op Opcode) MemBytes() int {
	switch op {
	case OpLW, OpSW, OpAMOSWAP, OpAMOADD:
		return 4
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLB, OpLBU, OpSB:
		return 1
	}
	return 0
}

// OpcodeByName returns the opcode with the given assembler mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op := OpInvalid + 1; op < numOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// Instruction is a decoded machine instruction. The meaning of the register
// fields depends on the format: stores keep their source register in Rd
// (mirroring the encoding, where the rd field holds the value register).
type Instruction struct {
	Op  Opcode
	Rd  uint8 // destination (or store/AMO source value register)
	Rs1 uint8 // first source (base address for memory ops)
	Rs2 uint8 // second source
	Imm int32 // sign-extended immediate (byte offset for branches/jumps)
}

// Encoding field layout.
const (
	opShift  = 26
	rdShift  = 21
	rs1Shift = 16
	rs2Shift = 11

	regMask   = 0x1F
	imm16Mask = 0xFFFF
	imm26Mask = 0x03FF_FFFF

	// MaxImm16 and MinImm16 bound I/B-format immediates.
	MaxImm16 = 1<<15 - 1
	MinImm16 = -(1 << 15)
	// MaxImm26 and MinImm26 bound J-format word offsets.
	MaxImm26 = 1<<25 - 1
	MinImm26 = -(1 << 25)
)

// Encode packs the instruction into its 32-bit binary form. It returns an
// error if a field is out of range for the opcode's format.
func Encode(ins Instruction) (uint32, error) {
	if !ins.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", ins.Op)
	}
	if ins.Rd >= NumRegs || ins.Rs1 >= NumRegs || ins.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: encode %s: register out of range", ins.Op)
	}
	w := uint32(ins.Op) << opShift
	switch ins.Op.Format() {
	case FormatR:
		w |= uint32(ins.Rd)<<rdShift | uint32(ins.Rs1)<<rs1Shift | uint32(ins.Rs2)<<rs2Shift
	case FormatI:
		if ins.Imm < MinImm16 || ins.Imm > MaxImm16 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 16-bit range", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Rd)<<rdShift | uint32(ins.Rs1)<<rs1Shift | uint32(ins.Imm)&imm16Mask
	case FormatB:
		if ins.Imm < MinImm16 || ins.Imm > MaxImm16 {
			return 0, fmt.Errorf("isa: encode %s: branch offset %d out of range", ins.Op, ins.Imm)
		}
		if ins.Imm%WordSize != 0 {
			return 0, fmt.Errorf("isa: encode %s: branch offset %d not word aligned", ins.Op, ins.Imm)
		}
		w |= uint32(ins.Rs1)<<rdShift | uint32(ins.Rs2)<<rs1Shift | uint32(ins.Imm)&imm16Mask
	case FormatJ:
		if ins.Imm%WordSize != 0 {
			return 0, fmt.Errorf("isa: encode %s: jump offset %d not word aligned", ins.Op, ins.Imm)
		}
		words := ins.Imm / WordSize
		if words < MinImm26 || words > MaxImm26 {
			return 0, fmt.Errorf("isa: encode %s: jump offset %d out of range", ins.Op, ins.Imm)
		}
		w |= uint32(words) & imm26Mask
	}
	return w, nil
}

// MustEncode is Encode for known-good instructions; it panics on error.
// It is intended for tests and statically constructed code sequences.
func MustEncode(ins Instruction) uint32 {
	w, err := Encode(ins)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit binary instruction word. Unknown opcodes decode to
// an Instruction with Op == OpInvalid rather than an error, so the CPU can
// raise an architectural illegal-instruction fault.
func Decode(w uint32) Instruction {
	op := Opcode(w >> opShift)
	if !op.Valid() {
		return Instruction{Op: OpInvalid}
	}
	var ins Instruction
	ins.Op = op
	switch op.Format() {
	case FormatR:
		ins.Rd = uint8(w >> rdShift & regMask)
		ins.Rs1 = uint8(w >> rs1Shift & regMask)
		ins.Rs2 = uint8(w >> rs2Shift & regMask)
	case FormatI:
		ins.Rd = uint8(w >> rdShift & regMask)
		ins.Rs1 = uint8(w >> rs1Shift & regMask)
		ins.Imm = signExtend16(w & imm16Mask)
	case FormatB:
		ins.Rs1 = uint8(w >> rdShift & regMask)
		ins.Rs2 = uint8(w >> rs1Shift & regMask)
		ins.Imm = signExtend16(w & imm16Mask)
	case FormatJ:
		ins.Imm = signExtend26(w&imm26Mask) * WordSize
	}
	return ins
}

func signExtend16(v uint32) int32 { return int32(int16(v)) }

func signExtend26(v uint32) int32 {
	if v&(1<<25) != 0 {
		v |= ^uint32(imm26Mask)
	}
	return int32(v)
}

// RegName returns the conventional assembler name of a register.
func RegName(r uint8) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegByName resolves a register name: either a conventional alias ("sp",
// "a0", "fp") or the raw form "rN".
func RegByName(name string) (uint8, bool) {
	if r, ok := regByName[name]; ok {
		return r, true
	}
	return 0, false
}

var regByName = func() map[string]uint8 {
	m := make(map[string]uint8, NumRegs+2)
	for i, n := range regNames {
		m[n] = uint8(i)
	}
	m["fp"] = RegS0
	for i := 0; i < NumRegs; i++ {
		m[fmt.Sprintf("r%d", i)] = uint8(i)
	}
	return m
}()
