package isa

import "fmt"

// Disassemble renders a decoded instruction in assembler syntax. pc is the
// address of the instruction; it is used to print absolute branch and jump
// targets alongside the relative offsets.
func Disassemble(ins Instruction, pc uint32) string {
	switch {
	case ins.Op == OpInvalid:
		return "invalid"
	case ins.Op == OpSYSCALL || ins.Op == OpBREAK:
		return ins.Op.String()
	case ins.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", ins.Op, RegName(ins.Rd), ins.Imm, RegName(ins.Rs1))
	case ins.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", ins.Op, RegName(ins.Rd), ins.Imm, RegName(ins.Rs1))
	case ins.Op.IsAMO():
		return fmt.Sprintf("%s %s, %s, (%s)", ins.Op, RegName(ins.Rd), RegName(ins.Rs2), RegName(ins.Rs1))
	case ins.Op == OpLUI:
		return fmt.Sprintf("%s %s, %d", ins.Op, RegName(ins.Rd), ins.Imm)
	case ins.Op == OpJALR:
		return fmt.Sprintf("%s %s, %s, %d", ins.Op, RegName(ins.Rd), RegName(ins.Rs1), ins.Imm)
	}
	switch ins.Op.Format() {
	case FormatR:
		return fmt.Sprintf("%s %s, %s, %s", ins.Op, RegName(ins.Rd), RegName(ins.Rs1), RegName(ins.Rs2))
	case FormatI:
		return fmt.Sprintf("%s %s, %s, %d", ins.Op, RegName(ins.Rd), RegName(ins.Rs1), ins.Imm)
	case FormatB:
		return fmt.Sprintf("%s %s, %s, 0x%x", ins.Op, RegName(ins.Rs1), RegName(ins.Rs2), branchTarget(pc, ins.Imm))
	case FormatJ:
		return fmt.Sprintf("%s 0x%x", ins.Op, branchTarget(pc, ins.Imm))
	}
	return ins.Op.String()
}

// branchTarget computes the absolute target of a PC-relative control
// transfer whose offset is relative to the successor instruction.
func branchTarget(pc uint32, imm int32) uint32 {
	return pc + WordSize + uint32(imm)
}

// DisassembleWord decodes and renders a raw instruction word.
func DisassembleWord(w uint32, pc uint32) string {
	return Disassemble(Decode(w), pc)
}
