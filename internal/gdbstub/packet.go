// Package gdbstub speaks the gdb Remote Serial Protocol (RSP) over TCP
// and maps it onto the time-travel session layer, so stock gdb — and any
// IDE that drives gdb — gets deterministic reverse execution over a
// recorded crash window for free. This is the VM-replay debuggers' trick
// (AADEBUG 2003): implement the wire protocol existing tooling already
// knows instead of teaching every client a bespoke API. The paper's
// support-engineer story (§1, §5) ends with exactly this: point a real
// debugger at the interval before a field crash.
//
// The package splits into three layers:
//
//   - a pure packet codec (this file): "$payload#xx" framing, two-hex
//     checksums, '}' escaping and '*' run-length encoding, with no I/O —
//     ParsePacket/EncodePacket round-trip byte-exactly and are fuzzed;
//   - a per-connection command dispatcher (stub.go) translating RSP
//     packets into timetravel.Command values, including the bs/bc
//     reverse-execution extensions;
//   - a TCP listener (server.go) that opens one timetravel.Manager
//     session per connection, honoring the manager's concurrency cap and
//     idle janitor.
package gdbstub

import (
	"bytes"
	"errors"
	"fmt"
)

// maxPacketBytes caps one decoded payload. RSP packets are small command
// strings and bounded memory reads; anything larger is an attack or a bug.
const maxPacketBytes = 16 << 10

// Packet-stream errors. ErrIncomplete asks the caller for more bytes; the
// others condemn the current packet (the transport answers '-' or drops
// it) but never the connection.
var (
	ErrIncomplete = errors.New("gdbstub: incomplete packet")
	ErrChecksum   = errors.New("gdbstub: packet checksum mismatch")
)

const hexDigits = "0123456789abcdef"

// Checksum is the RSP packet checksum: the mod-256 sum of the wire bytes
// between '$' and '#' (after escaping and run-length encoding).
func Checksum(wire []byte) byte {
	var sum byte
	for _, b := range wire {
		sum += b
	}
	return sum
}

// EncodePacket frames payload as one wire packet: '$', the escaped and
// run-length-encoded body, '#', and the two-digit hex checksum.
func EncodePacket(payload []byte) []byte {
	body := encodeBody(payload)
	sum := Checksum(body)
	out := make([]byte, 0, len(body)+4)
	out = append(out, '$')
	out = append(out, body...)
	return append(out, '#', hexDigits[sum>>4], hexDigits[sum&0xf])
}

// mustEscape reports whether b cannot travel literally inside a packet.
func mustEscape(b byte) bool {
	return b == '$' || b == '#' || b == '}' || b == '*'
}

// rleUnsafe reports repeat-count characters a conservative sender avoids:
// the spec forbids '#' and '$', and real stubs also skip '*', '}', '+'
// and '-' so a corrupted stream cannot alias framing or ack bytes.
func rleUnsafe(r byte) bool {
	switch r {
	case '#', '$', '*', '}', '+', '-':
		return true
	}
	return false
}

// encodeBody escapes the payload and run-length-encodes literal runs.
// "c*r" stands for c repeated (r-29) further times; r must stay printable
// (so one clause covers at most 98 bytes) and runs shorter than four bytes
// are cheaper spelled out. Escaped bytes never join a run: the repeat
// applies to the wire character, and keeping runs literal-only makes the
// decode order (expand, then unescape) unambiguous.
func encodeBody(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+4)
	for i := 0; i < len(payload); {
		b := payload[i]
		if mustEscape(b) {
			out = append(out, '}', b^0x20)
			i++
			continue
		}
		run := 1
		for i+run < len(payload) && payload[i+run] == b && run < 98 {
			run++
		}
		if run >= 4 {
			n := run
			for rleUnsafe(byte(n - 1 + 29)) {
				n-- // shrink to the nearest safe repeat char (min 4 is ' ')
			}
			out = append(out, b, '*', byte(n-1+29))
			i += n
			continue
		}
		out = append(out, b)
		i++
	}
	return out
}

// decodeBody reverses encodeBody: expand run-length clauses, then resolve
// escapes. A '*' repeats the previously decoded byte, so a clause whose
// run was spelled as an escape pair still expands to the escaped value.
func decodeBody(wire []byte) ([]byte, error) {
	out := make([]byte, 0, len(wire))
	for i := 0; i < len(wire); i++ {
		switch b := wire[i]; b {
		case '}':
			i++
			if i >= len(wire) {
				return nil, errors.New("gdbstub: dangling escape")
			}
			out = append(out, wire[i]^0x20)
		case '*':
			i++
			if i >= len(wire) {
				return nil, errors.New("gdbstub: dangling run-length")
			}
			r := wire[i]
			if r < 29 || r > 126 {
				return nil, fmt.Errorf("gdbstub: run-length repeat char %#x out of range", r)
			}
			if len(out) == 0 {
				return nil, errors.New("gdbstub: run-length with no preceding character")
			}
			c := out[len(out)-1]
			for j := 0; j < int(r)-29; j++ {
				out = append(out, c)
			}
		default:
			out = append(out, b)
		}
		if len(out) > maxPacketBytes {
			return nil, fmt.Errorf("gdbstub: packet exceeds %d bytes", maxPacketBytes)
		}
	}
	return out, nil
}

// hexVal decodes one hex digit; ok is false for non-hex bytes.
func hexVal(b byte) (byte, bool) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', true
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, true
	case b >= 'A' && b <= 'F':
		return b - 'A' + 10, true
	}
	return 0, false
}

// ParsePacket extracts the first complete packet from raw, skipping any
// leading junk (acks, line noise) before the '$'. It returns the decoded
// payload and how many bytes of raw were consumed. ErrIncomplete means no
// complete packet has arrived yet (nothing is consumed); ErrChecksum and
// body-decode errors consume through the bad packet so the caller can NAK
// and resynchronize.
func ParsePacket(raw []byte) (payload []byte, consumed int, err error) {
	start := bytes.IndexByte(raw, '$')
	if start < 0 {
		return nil, 0, ErrIncomplete
	}
	rel := bytes.IndexByte(raw[start:], '#')
	if rel < 0 {
		if len(raw)-start > maxPacketBytes*2 {
			// An unterminated flood: condemn it rather than buffer forever.
			return nil, len(raw), fmt.Errorf("gdbstub: unterminated packet exceeds %d bytes", maxPacketBytes*2)
		}
		return nil, 0, ErrIncomplete
	}
	hash := start + rel
	if hash+2 >= len(raw) {
		return nil, 0, ErrIncomplete
	}
	body := raw[start+1 : hash]
	consumed = hash + 3
	hi, ok1 := hexVal(raw[hash+1])
	lo, ok2 := hexVal(raw[hash+2])
	if !ok1 || !ok2 || (hi<<4|lo) != Checksum(body) {
		return nil, consumed, ErrChecksum
	}
	payload, err = decodeBody(body)
	if err != nil {
		return nil, consumed, err
	}
	return payload, consumed, nil
}
