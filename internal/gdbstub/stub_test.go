package gdbstub

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bugnet/internal/asm"
	"bugnet/internal/cache"
	"bugnet/internal/core"
	"bugnet/internal/kernel"
	"bugnet/internal/timetravel"
)

// corruptorProgram is the canonical time-travel scenario (shared shape
// with the timetravel tests): a loop bound of 9 overflows the 8-slot buf,
// the 9th store corrupts ptr, and the crash dereferences it.
const corruptorProgram = `
        .data
buf:    .space 32
ptr:    .word 1024
        .text
main:   li   s0, 0
        la   s1, buf
fill:   slli t0, s0, 2
        add  t0, s1, t0
store:  sw   s0, (t0)
        addi s0, s0, 1
        li   t1, 9
        blt  s0, t1, fill
        la   t2, ptr
        lw   t3, (t2)
boom:   lw   a0, (t3)
`

// fakeSource serves the recorded corruptor report under the id "r1".
type fakeSource struct {
	rep *core.CrashReport
	img *asm.Image
}

func (f *fakeSource) OpenReport(id string) (*core.CrashReport, *asm.Image, func(), error) {
	if id != "r1" {
		return nil, nil, nil, fmt.Errorf("%w: %q", timetravel.ErrUnknownReport, id)
	}
	return f.rep, f.img, func() {}, nil
}

func recordCorruptor(t testing.TB) (*core.CrashReport, *asm.Image) {
	t.Helper()
	img := asm.MustAssemble("gdbstub.s", corruptorProgram)
	res, rep, _ := core.Record(img, kernel.Config{}, core.Config{
		IntervalLength: 16,
		Cache: cache.Config{
			L1: cache.LevelConfig{SizeBytes: 1 << 10, BlockBytes: 32, Assoc: 2},
			L2: cache.LevelConfig{SizeBytes: 8 << 10, BlockBytes: 32, Assoc: 4},
		},
	})
	if res.Crash == nil {
		t.Fatal("corruptor program did not crash")
	}
	return rep, img
}

// newTestStub builds a manager over the corruptor report and a detached
// conn for driving the dispatcher without a socket.
func newTestStub(t testing.TB, maxSessions int, defaultReport string) (*conn, *timetravel.Manager, *asm.Image) {
	t.Helper()
	rep, img := recordCorruptor(t)
	mgr := timetravel.NewManager(&fakeSource{rep: rep, img: img}, timetravel.ManagerConfig{
		MaxSessions: maxSessions,
		IdleTimeout: time.Hour,
		Engine:      timetravel.Config{CheckpointEvery: 8},
	})
	t.Cleanup(mgr.Close)
	srv := New(Config{Manager: mgr, DefaultReport: defaultReport})
	return &conn{srv: srv}, mgr, img
}

func handleStr(t *testing.T, cn *conn, payload string) string {
	t.Helper()
	reply, kill := cn.handle([]byte(payload))
	if kill {
		t.Fatalf("packet %q killed the connection", payload)
	}
	return reply
}

func TestStubHandshakePackets(t *testing.T) {
	cn, _, _ := newTestStub(t, 2, "r1")
	sup := handleStr(t, cn, "qSupported:multiprocess+;xmlRegisters=i386")
	for _, want := range []string{"ReverseStep+", "ReverseContinue+", "qXfer:features:read+", "QStartNoAckMode+"} {
		if !strings.Contains(sup, want) {
			t.Fatalf("qSupported reply %q missing %s", sup, want)
		}
	}
	if got := handleStr(t, cn, "!"); got != "OK" {
		t.Fatalf("! = %q", got)
	}
	if got := handleStr(t, cn, "qAttached"); got != "1" {
		t.Fatalf("qAttached = %q", got)
	}
	if got := handleStr(t, cn, "Hg1"); got != "OK" {
		t.Fatalf("Hg1 = %q", got)
	}
	if got := handleStr(t, cn, "qC"); got != "QC1" {
		t.Fatalf("qC = %q", got)
	}
	if got := handleStr(t, cn, "vMustReplyEmpty"); got != "" {
		t.Fatalf("vMustReplyEmpty = %q", got)
	}
	if got := handleStr(t, cn, "qBogusQuery"); got != "" {
		t.Fatalf("unknown query = %q", got)
	}
	handleStr(t, cn, "QStartNoAckMode")
	if !cn.startNoAck {
		t.Fatal("QStartNoAckMode did not arm the switch")
	}
}

func TestStubTargetXML(t *testing.T) {
	cn, _, _ := newTestStub(t, 2, "r1")
	var got strings.Builder
	for off := 0; ; {
		rep := handleStr(t, cn, fmt.Sprintf("qXfer:features:read:target.xml:%x,40", off))
		if rep == "" || rep[0] != 'm' && rep[0] != 'l' {
			t.Fatalf("qXfer reply %q", rep)
		}
		got.WriteString(rep[1:])
		off += len(rep) - 1
		if rep[0] == 'l' {
			break
		}
	}
	if got.String() != targetXML() {
		t.Fatalf("reassembled target.xml differs:\n%s", got.String())
	}
	for _, want := range []string{"riscv:rv32", `name="sp"`, `name="pc"`, `regnum="32"`} {
		if !strings.Contains(got.String(), want) {
			t.Fatalf("target.xml missing %s", want)
		}
	}
	if rep := handleStr(t, cn, "qXfer:features:read:wrong.xml:0,40"); rep != "E00" {
		t.Fatalf("bad annex = %q", rep)
	}
}

func TestStubAttachErrors(t *testing.T) {
	cn, mgr, _ := newTestStub(t, 1, "")
	// No session, no default report: session-needing packets say so.
	if got := handleStr(t, cn, "g"); got != errNoSession {
		t.Fatalf("g without session = %q", got)
	}
	if got := handleStr(t, cn, "vAttach;deadbeef"); got != errNoSession {
		t.Fatalf("unknown report = %q", got)
	}
	if got := handleStr(t, cn, "vAttach;"); got != errMalformed {
		t.Fatalf("empty report = %q", got)
	}
	// Fill the manager's only slot; the attach must surface the cap.
	other, err := mgr.Open("r1", -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := handleStr(t, cn, "vAttach;r1"); got != errCapacity {
		t.Fatalf("cap-limited attach = %q", got)
	}
	mgr.CloseSession(other.ID)
	if got := handleStr(t, cn, "vAttach;r1"); !strings.HasPrefix(got, "T05") {
		t.Fatalf("attach = %q", got)
	}
	// Re-attaching releases the old slot instead of leaking it.
	if got := handleStr(t, cn, "vAttach;r1"); !strings.HasPrefix(got, "T05") {
		t.Fatalf("re-attach = %q", got)
	}
	if n := mgr.Count(); n != 1 {
		t.Fatalf("re-attach leaked sessions: %d live", n)
	}
}

func TestStubRegistersAndMemory(t *testing.T) {
	cn, _, img := newTestStub(t, 2, "r1")
	// Run the whole window: buf and ptr are known, everything else is not.
	if rep := handleStr(t, cn, "c"); !strings.Contains(rep, "replaylog:end") {
		t.Fatalf("c to end = %q", rep)
	}
	g := handleStr(t, cn, "g")
	if len(g) != (pcRegNum+1)*8 {
		t.Fatalf("g reply holds %d chars, want %d", len(g), (pcRegNum+1)*8)
	}
	// p for the PC (reg 32) agrees with the g block's last word.
	if p := handleStr(t, cn, fmt.Sprintf("p%x", pcRegNum)); p != g[len(g)-8:] {
		t.Fatalf("p pc = %q, g tail = %q", p, g[len(g)-8:])
	}
	if p := handleStr(t, cn, "p21"); p != errMalformed {
		t.Fatalf("out-of-range register = %q", p)
	}
	buf := img.MustSymbol("buf")
	ptr := img.MustSymbol("ptr")
	// buf[1] was stored 1: little-endian bytes 01 00 00 00.
	if m := handleStr(t, cn, fmt.Sprintf("m%x,4", buf+4)); m != "01000000" {
		t.Fatalf("m buf[1] = %q", m)
	}
	// Byte granularity: an unaligned 2-byte read slices the word.
	if m := handleStr(t, cn, fmt.Sprintf("m%x,2", buf+5)); m != "0000" {
		t.Fatalf("unaligned read = %q", m)
	}
	// The overflowing store wrote 8 into ptr.
	if m := handleStr(t, cn, fmt.Sprintf("m%x,4", ptr)); m != "08000000" {
		t.Fatalf("m ptr = %q", m)
	}
	// A word the window never touched is unavailable, not invented.
	if m := handleStr(t, cn, fmt.Sprintf("m%x,4", ptr+64)); m != "xxxxxxxx" {
		t.Fatalf("untouched word = %q", m)
	}
	// A read spanning several mem commands chunks transparently.
	span := uint64(timetravel.MaxMemWords*4 + 64)
	m := handleStr(t, cn, fmt.Sprintf("m%x,%x", buf, span))
	if uint64(len(m)) != 2*span {
		t.Fatalf("chunked read returned %d chars, want %d", len(m), 2*span)
	}
	if !strings.HasPrefix(m, "00000000"+"01000000") || !strings.HasSuffix(m, "xx") {
		t.Fatalf("chunked read content starts %q", m[:32])
	}
	// Malformed and writable requests fail without killing anything.
	if m := handleStr(t, cn, "mzz,4"); m != errMalformed {
		t.Fatalf("bad addr = %q", m)
	}
	if m := handleStr(t, cn, fmt.Sprintf("m%x,%x", buf, maxMemRead+1)); m != errMalformed {
		t.Fatalf("oversized read = %q", m)
	}
	if m := handleStr(t, cn, "mfffffffe,4"); m != errMalformed {
		t.Fatalf("wrapping read = %q", m)
	}
	for _, p := range []string{"G" + strings.Repeat("00", 132), "P0=1234", "Mdead,4:beef", "X0,0"} {
		if got := handleStr(t, cn, p); got != errReadOnly {
			t.Fatalf("%q = %q, want %s", p, got, errReadOnly)
		}
	}
}

func TestStubBreakAndWatchPackets(t *testing.T) {
	cn, _, img := newTestStub(t, 2, "r1")
	store := img.MustSymbol("store")
	ptr := img.MustSymbol("ptr")

	if got := handleStr(t, cn, fmt.Sprintf("Z0,%x,4", store)); got != "OK" {
		t.Fatalf("Z0 = %q", got)
	}
	rep := handleStr(t, cn, "c")
	if !strings.Contains(rep, "swbreak") {
		t.Fatalf("breakpoint stop = %q", rep)
	}
	if pc, ok := StopPC(rep); !ok || pc != store {
		t.Fatalf("breakpoint stop pc = %#x (%v), want %#x", pc, ok, store)
	}
	if got := handleStr(t, cn, fmt.Sprintf("z0,%x,4", store)); got != "OK" {
		t.Fatalf("z0 = %q", got)
	}
	if got := handleStr(t, cn, fmt.Sprintf("Z2,%x,4", ptr)); got != "OK" {
		t.Fatalf("Z2 = %q", got)
	}
	rep = handleStr(t, cn, "c")
	if addr, ok := StopWatchAddr(rep); !ok || addr != ptr&^3 {
		t.Fatalf("watch stop = %q", rep)
	}
	if got := handleStr(t, cn, fmt.Sprintf("z2,%x,4", ptr)); got != "OK" {
		t.Fatalf("z2 = %q", got)
	}
	// Unsupported breakpoint types are explicitly unimplemented.
	if got := handleStr(t, cn, "Z9,0,0"); got != "" {
		t.Fatalf("Z9 = %q", got)
	}
	if got := handleStr(t, cn, "Z0"); got != errMalformed {
		t.Fatalf("truncated Z = %q", got)
	}
}

func TestStubMotionAndVCont(t *testing.T) {
	cn, _, _ := newTestStub(t, 2, "r1")
	rep := handleStr(t, cn, "s")
	pc1, ok := StopPC(rep)
	if !ok || !strings.HasPrefix(rep, "T05") {
		t.Fatalf("s = %q", rep)
	}
	rep = handleStr(t, cn, "bs")
	if !strings.HasPrefix(rep, "T05") {
		t.Fatalf("bs = %q", rep)
	}
	// Reverse-stepping past the window start reports the replaylog edge.
	rep = handleStr(t, cn, "bs")
	if !strings.Contains(rep, "replaylog:begin") {
		t.Fatalf("bs at start = %q", rep)
	}
	if got := handleStr(t, cn, "vCont?"); got != "vCont;c;C;s;S" {
		t.Fatalf("vCont? = %q", got)
	}
	rep = handleStr(t, cn, "vCont;s:1;c")
	if pc2, ok := StopPC(rep); !ok || pc2 != pc1 {
		t.Fatalf("vCont;s landed at %q, first step at %#x", rep, pc1)
	}
	if got := handleStr(t, cn, "vCont;x"); got != errMalformed {
		t.Fatalf("vCont;x = %q", got)
	}
	// Resume-with-address rewrites history; refused.
	if got := handleStr(t, cn, "c100"); got != errMalformed {
		t.Fatalf("c<addr> = %q", got)
	}
}

func TestStubDetachAndKill(t *testing.T) {
	cn, mgr, _ := newTestStub(t, 2, "r1")
	handleStr(t, cn, "?") // auto-attach the default report
	if mgr.Count() != 1 {
		t.Fatalf("sessions after ? = %d", mgr.Count())
	}
	if got := handleStr(t, cn, "D"); got != "OK" {
		t.Fatalf("D = %q", got)
	}
	if mgr.Count() != 0 {
		t.Fatalf("sessions after D = %d", mgr.Count())
	}
	handleStr(t, cn, "?")
	reply, kill := cn.handle([]byte("k"))
	if !kill || reply != "" {
		t.Fatalf("k = %q, kill=%v", reply, kill)
	}
	if mgr.Count() != 0 {
		t.Fatalf("sessions after k = %d", mgr.Count())
	}
}
