package gdbstub

import "bugnet/internal/obs"

// RSP wire metrics. Packet kinds are classified from the first bytes of
// the payload into a fixed set, and error replies are counted only for
// the stub's own E-codes — both label sets are bounded no matter what a
// client sends.
var (
	mConnsTotal = obs.Default.Counter("bugnet_gdb_connections_total",
		"RSP connections accepted.")
	mConnsOpen = obs.Default.Gauge("bugnet_gdb_connections_open",
		"RSP connections currently open.")
	mNaks = obs.Default.Counter("bugnet_gdb_naks_total",
		"Checksum failures NAKed back to the client.")
	packetKinds = obs.Default.CounterVec("bugnet_gdb_packets_total",
		"RSP packets handled, by kind.", "kind")
	mPktQuery     = packetKinds.With("query")
	mPktAttach    = packetKinds.With("attach")
	mPktMotion    = packetKinds.With("motion")
	mPktRegs      = packetKinds.With("regs")
	mPktMem       = packetKinds.With("mem")
	mPktBreak     = packetKinds.With("break")
	mPktSession   = packetKinds.With("session")
	mPktInterrupt = packetKinds.With("interrupt")
	mPktOther     = packetKinds.With("other")
	errorReplies  = obs.Default.CounterVec("bugnet_gdb_errors_total",
		"Error replies sent, by code.", "code")
	mErrE01 = errorReplies.With(errMalformed)
	mErrE02 = errorReplies.With(errNoSession)
	mErrE03 = errorReplies.With(errSessionDed)
	mErrE04 = errorReplies.With(errCapacity)
	mErrE05 = errorReplies.With(errReadOnly)
)

// countPacket classifies one decoded packet payload.
func countPacket(p []byte) {
	if len(p) == 0 {
		mPktOther.Inc()
		return
	}
	switch p[0] {
	case 'q', 'Q':
		mPktQuery.Inc()
	case 'v':
		if len(p) >= 7 && string(p[:7]) == "vAttach" {
			mPktAttach.Inc()
		} else {
			mPktMotion.Inc() // vCont and friends
		}
	case 's', 'c', 'b':
		mPktMotion.Inc()
	case 'g', 'p':
		mPktRegs.Inc()
	case 'm':
		mPktMem.Inc()
	case 'Z', 'z':
		mPktBreak.Inc()
	case 'H', 'T', '?', '!', 'D', 'k':
		mPktSession.Inc()
	default:
		mPktOther.Inc()
	}
}

// countErrorReply counts replies carrying one of the stub's error codes.
func countErrorReply(reply string) {
	switch reply {
	case errMalformed:
		mErrE01.Inc()
	case errNoSession:
		mErrE02.Inc()
	case errSessionDed:
		mErrE03.Inc()
	case errCapacity:
		mErrE04.Inc()
	case errReadOnly:
		mErrE05.Inc()
	}
}
