package gdbstub

import (
	"bytes"
	"strings"
	"testing"
)

func TestPacketRoundTrip(t *testing.T) {
	cases := [][]byte{
		{},
		[]byte("OK"),
		[]byte("qSupported:multiprocess+;swbreak+"),
		[]byte("$#}*"),                  // every escapable byte
		[]byte(strings.Repeat("0", 64)), // long run: RLE kicks in
		[]byte(strings.Repeat("a", 3)),  // below the RLE threshold
		[]byte("T05watch:10008;thread:1;"),
		{0x00, 0x01, 0x7d, 0x24, 0xff, 0x2a}, // binary qXfer-style payload
		bytes.Repeat([]byte{0x00}, 500),      // run longer than one clause
	}
	for _, payload := range cases {
		wire := EncodePacket(payload)
		got, n, err := ParsePacket(wire)
		if err != nil {
			t.Fatalf("ParsePacket(%q): %v", wire, err)
		}
		if n != len(wire) {
			t.Fatalf("consumed %d of %d for %q", n, len(wire), wire)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip %q -> %q", payload, got)
		}
	}
}

func TestPacketRLECompresses(t *testing.T) {
	payload := []byte(strings.Repeat("0", 32))
	wire := EncodePacket(payload)
	if len(wire) >= len(payload) {
		t.Fatalf("RLE did not compress: %d wire bytes for %d zeros", len(wire), len(payload))
	}
}

func TestParsePacketSkipsJunk(t *testing.T) {
	wire := append([]byte("+++noise"), EncodePacket([]byte("OK"))...)
	payload, n, err := ParsePacket(wire)
	if err != nil || string(payload) != "OK" || n != len(wire) {
		t.Fatalf("payload=%q n=%d err=%v", payload, n, err)
	}
}

func TestParsePacketIncomplete(t *testing.T) {
	wire := EncodePacket([]byte("qSupported"))
	for cut := 0; cut < len(wire); cut++ {
		if _, n, err := ParsePacket(wire[:cut]); err != ErrIncomplete || n != 0 {
			t.Fatalf("cut=%d: n=%d err=%v, want ErrIncomplete", cut, n, err)
		}
	}
}

func TestParsePacketBadChecksum(t *testing.T) {
	wire := EncodePacket([]byte("OK"))
	wire[len(wire)-1] ^= 1
	if _, n, err := ParsePacket(wire); err != ErrChecksum || n != len(wire) {
		t.Fatalf("n=%d err=%v, want full consume + ErrChecksum", n, err)
	}
	// Garbage checksum digits are a checksum failure, not a panic.
	bad := []byte("$OK#zz")
	if _, _, err := ParsePacket(bad); err != ErrChecksum {
		t.Fatalf("err=%v, want ErrChecksum", err)
	}
}

func TestDecodeBodyRejectsMalformed(t *testing.T) {
	cases := []string{
		"}",      // dangling escape
		"*!",     // run-length with no preceding character
		"a*",     // dangling run-length
		"a*\x1b", // repeat char below the printable floor
	}
	for _, c := range cases {
		if _, err := decodeBody([]byte(c)); err == nil {
			t.Fatalf("decodeBody(%q) accepted malformed input", c)
		}
	}
}

func TestDecodeBodyExpandsRLE(t *testing.T) {
	// "0* " = '0' plus (' '-29)=3 more: the spec's own example.
	got, err := decodeBody([]byte("0* "))
	if err != nil || string(got) != "0000" {
		t.Fatalf("got %q, %v", got, err)
	}
}
