package gdbstub

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"bugnet/internal/timetravel"
)

// Config parameterizes a Server.
type Config struct {
	// Manager hosts the time-travel sessions the stub drives. Each TCP
	// connection attaches at most one session, so the manager's
	// concurrency cap and idle janitor govern RSP clients exactly as they
	// govern the JSON API.
	Manager *timetravel.Manager
	// DefaultReport, when set, is the report a connection attaches to on
	// its first session-needing packet if the client never sent vAttach —
	// the plain "target remote" flow, where gdb never names a process.
	DefaultReport string
	// IdleTimeout is the per-frame read deadline: a connection that sends
	// nothing for this long is closed (its session slot frees). Default
	// 5 minutes.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write. Default 30 seconds.
	WriteTimeout time.Duration
}

func (c *Config) fillDefaults() {
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
}

// Server accepts RSP connections and runs one protocol conversation per
// connection. It is transport only: every debugging decision lives in the
// session manager and engine, shared with the JSON debug API.
type Server struct {
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
}

// New returns a server over cfg. Callers pass listeners to Serve.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	return &Server{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on l until the listener fails or the server
// closes. Each connection runs in its own goroutine; a failed or hostile
// connection never affects the accept loop.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("gdbstub: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Close stops all listeners and tears down live connections (detaching
// their sessions). Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}

// frame is one unit of the inbound byte stream.
type frame struct {
	kind      byte // '+' ack, '-' nak, 3 interrupt, '$' packet
	payload   []byte
	malformed bool // packet with a valid checksum but an undecodable body
}

// readFrame reads the next ack, nak, interrupt or packet, skipping line
// noise between frames. A checksum mismatch returns ErrChecksum (the
// caller NAKs and resynchronizes); a body that fails to decode under a
// valid checksum returns a malformed frame (the caller answers E01 — a
// retransmit would just fail again).
func readFrame(br *bufio.Reader) (frame, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return frame{}, err
		}
		switch b {
		case '+', '-':
			return frame{kind: b}, nil
		case 0x03:
			return frame{kind: 3}, nil
		case '$':
			body := make([]byte, 0, 64)
			for {
				c, err := br.ReadByte()
				if err != nil {
					return frame{}, err
				}
				if c == '#' {
					break
				}
				body = append(body, c)
				if len(body) > 2*maxPacketBytes {
					return frame{}, errors.New("gdbstub: unterminated packet flood")
				}
			}
			var sum [2]byte
			if _, err := io.ReadFull(br, sum[:]); err != nil {
				return frame{}, err
			}
			hi, ok1 := hexVal(sum[0])
			lo, ok2 := hexVal(sum[1])
			if !ok1 || !ok2 || hi<<4|lo != Checksum(body) {
				return frame{}, ErrChecksum
			}
			payload, err := decodeBody(body)
			if err != nil {
				return frame{kind: '$', malformed: true}, nil
			}
			return frame{kind: '$', payload: payload}, nil
		default:
			// noise between frames: skip
		}
	}
}

// serveConn runs one RSP conversation. The deadline discipline: every
// frame read re-arms IdleTimeout, every write WriteTimeout — a stalled or
// vanished client frees its session slot without operator help, while the
// manager's own janitor stays the backstop.
func (s *Server) serveConn(c net.Conn) {
	cn := &conn{srv: s}
	mConnsTotal.Inc()
	mConnsOpen.Inc()
	defer func() {
		mConnsOpen.Dec()
		cn.detach()
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	var lastReply []byte
	write := func(b []byte) bool {
		c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		_, err := c.Write(b)
		return err == nil
	}
	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := readFrame(br)
		if errors.Is(err, ErrChecksum) {
			// Ask for a retransmit; in no-ack mode the link is assumed
			// reliable, so a bad checksum is just a dropped packet.
			mNaks.Inc()
			if !cn.noAck && !write([]byte{'-'}) {
				return
			}
			continue
		}
		if err != nil {
			return // EOF, deadline, or flood: the conversation is over
		}
		switch f.kind {
		case '+':
			continue
		case '-':
			if lastReply == nil || !write(lastReply) {
				return
			}
			continue
		case 3:
			// Interrupt between packets: the target is always stopped, so
			// answer with where the replay stands.
			mPktInterrupt.Inc()
			rep := errNoSession
			if out, errRep := cn.do(timetravel.Command{Cmd: "where"}); errRep == "" {
				rep = stopReply(out)
			}
			lastReply = EncodePacket([]byte(rep))
			if !write(lastReply) {
				return
			}
			continue
		}
		countPacket(f.payload)
		reply, kill := cn.handle(f.payload)
		if f.malformed {
			reply, kill = errMalformed, false
		}
		countErrorReply(reply)
		var buf []byte
		if !cn.noAck {
			buf = append(buf, '+')
		}
		if !kill || reply != "" { // k expects no reply packet
			lastReply = EncodePacket([]byte(reply))
			buf = append(buf, lastReply...)
		}
		if len(buf) > 0 && !write(buf) {
			return
		}
		if cn.startNoAck {
			cn.noAck, cn.startNoAck = true, false
		}
		if kill {
			return
		}
	}
}
