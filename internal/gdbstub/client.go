package gdbstub

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"
)

// Client is a minimal scripted RSP client: enough protocol to drive the
// stub (and any gdbserver-compatible stub) from tests and the
// bugnet-debug -rsp smoke mode without a real gdb in the loop. It speaks
// the same wire layer the server does — acks, retransmits, no-ack mode —
// one synchronous exchange at a time.
type Client struct {
	c       net.Conn
	br      *bufio.Reader
	noAck   bool
	timeout time.Duration
}

// Dial connects to an RSP listener.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, br: bufio.NewReader(c), timeout: timeout}, nil
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// Exchange sends one packet and returns the decoded reply payload,
// handling acknowledgment and bounded retransmission.
func (cl *Client) Exchange(payload string) (string, error) {
	wire := EncodePacket([]byte(payload))
	deadline := time.Now().Add(cl.timeout)
	cl.c.SetDeadline(deadline)
	if _, err := cl.c.Write(wire); err != nil {
		return "", err
	}
	// Wait for the ack, resending on nak. In no-ack mode the reply itself
	// is the acknowledgment.
	for retries := 0; !cl.noAck; {
		b, err := cl.br.ReadByte()
		if err != nil {
			return "", err
		}
		if b == '+' {
			break
		}
		if b == '-' {
			if retries++; retries > 4 {
				return "", errors.New("gdbstub: client: too many retransmits")
			}
			if _, err := cl.c.Write(wire); err != nil {
				return "", err
			}
		}
		// Anything else before the ack is noise; keep reading.
	}
	for {
		f, err := readFrame(cl.br)
		if errors.Is(err, ErrChecksum) {
			if _, werr := cl.c.Write([]byte{'-'}); werr != nil {
				return "", werr
			}
			continue
		}
		if err != nil {
			return "", err
		}
		if f.kind != '$' {
			continue // stray ack from a previous exchange
		}
		if f.malformed {
			return "", errors.New("gdbstub: client: undecodable reply body")
		}
		if !cl.noAck {
			if _, err := cl.c.Write([]byte{'+'}); err != nil {
				return "", err
			}
		}
		return string(f.payload), nil
	}
}

// StartNoAck negotiates QStartNoAckMode; on OK both sides drop acks.
func (cl *Client) StartNoAck() error {
	rep, err := cl.Exchange("QStartNoAckMode")
	if err != nil {
		return err
	}
	if rep != "OK" {
		return fmt.Errorf("gdbstub: client: QStartNoAckMode: %q", rep)
	}
	cl.noAck = true
	return nil
}

// ReadRegisters issues g and decodes the reply into the general-purpose
// registers and the PC.
func (cl *Client) ReadRegisters() (regs []uint32, pc uint32, err error) {
	rep, err := cl.Exchange("g")
	if err != nil {
		return nil, 0, err
	}
	if strings.HasPrefix(rep, "E") {
		return nil, 0, fmt.Errorf("gdbstub: client: g: %s", rep)
	}
	vals, err := decodeHexWordsLE(rep)
	if err != nil {
		return nil, 0, err
	}
	if len(vals) != pcRegNum+1 {
		return nil, 0, fmt.Errorf("gdbstub: client: g returned %d registers", len(vals))
	}
	return vals[:pcRegNum], vals[pcRegNum], nil
}

// decodeHexWordsLE decodes a g-style reply: consecutive 32-bit words,
// each as eight hex digits in little-endian byte order.
func decodeHexWordsLE(s string) ([]uint32, error) {
	if len(s)%8 != 0 {
		return nil, fmt.Errorf("gdbstub: client: register block length %d", len(s))
	}
	out := make([]uint32, 0, len(s)/8)
	for i := 0; i < len(s); i += 8 {
		var v uint32
		for j := 0; j < 4; j++ {
			hi, ok1 := hexVal(s[i+2*j])
			lo, ok2 := hexVal(s[i+2*j+1])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("gdbstub: client: bad hex word %q", s[i:i+8])
			}
			v |= uint32(hi<<4|lo) << (8 * j)
		}
		out = append(out, v)
	}
	return out, nil
}

// StopPC extracts the PC register pair a T stop reply carries, so
// scripted clients can assert where a motion landed without a follow-up
// g exchange.
func StopPC(reply string) (uint32, bool) {
	if len(reply) < 3 || reply[0] != 'T' {
		return 0, false
	}
	want := fmt.Sprintf("%x:", pcRegNum)
	for _, pair := range strings.Split(reply[3:], ";") {
		if v, ok := strings.CutPrefix(pair, want); ok {
			words, err := decodeHexWordsLE(v)
			if err != nil || len(words) != 1 {
				return 0, false
			}
			return words[0], true
		}
	}
	return 0, false
}

// StopWatchAddr extracts the data address of a watch stop reply
// ("T05watch:<addr>;...").
func StopWatchAddr(reply string) (uint32, bool) {
	if len(reply) < 3 || reply[0] != 'T' {
		return 0, false
	}
	for _, pair := range strings.Split(reply[3:], ";") {
		if v, ok := strings.CutPrefix(pair, "watch:"); ok {
			var addr uint32
			if _, err := fmt.Sscanf(v, "%x", &addr); err != nil {
				return 0, false
			}
			return addr, true
		}
	}
	return 0, false
}
