package gdbstub

import (
	"bytes"
	"testing"
)

// FuzzRSPPacket is a differential fuzzer over the packet codec. Two
// properties, both ways:
//
//   - arbitrary wire bytes never panic the parser, and whatever it accepts
//     re-encodes and re-parses to the identical payload (the stub's replies
//     must survive the client's parser);
//   - arbitrary payload bytes framed by EncodePacket parse back
//     byte-exactly and consume the whole wire image.
func FuzzRSPPacket(f *testing.F) {
	f.Add([]byte("$OK#9a"))
	f.Add([]byte("+$qSupported:swbreak+#01"))
	f.Add([]byte("$0* #xx"))
	f.Add([]byte("$}]#xx"))
	f.Add([]byte("noise$T05watch:10008;thread:1;#00garbage"))
	f.Add(bytes.Repeat([]byte{0x00, '$', '#', '}'}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Treat data as wire bytes.
		payload, consumed, err := ParsePacket(data)
		if err == nil {
			if consumed <= 0 || consumed > len(data) {
				t.Fatalf("consumed %d of %d", consumed, len(data))
			}
			reenc := EncodePacket(payload)
			got, n, err := ParsePacket(reenc)
			if err != nil || n != len(reenc) || !bytes.Equal(got, payload) {
				t.Fatalf("re-encode diverged: %q -> %q (n=%d err=%v)", payload, got, n, err)
			}
		}

		// Treat data as a payload.
		if len(data) <= maxPacketBytes {
			wire := EncodePacket(data)
			got, n, err := ParsePacket(wire)
			if err != nil {
				t.Fatalf("EncodePacket produced unparseable wire for %q: %v", data, err)
			}
			if n != len(wire) {
				t.Fatalf("encode/parse consumed %d of %d", n, len(wire))
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("payload round trip %q -> %q", data, got)
			}
		}
	})
}
