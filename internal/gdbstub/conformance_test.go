package gdbstub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bugnet/internal/asm"
	"bugnet/internal/timetravel"
)

// startServer brings up the full stack a bugnet-serve -gdb deployment
// runs: a session manager over a stored report, the RSP listener, and the
// JSON debug API over the same manager.
func startServer(t *testing.T, maxSessions int, defaultReport string) (addr string, mgr *timetravel.Manager, jsonURL string, img *asm.Image) {
	t.Helper()
	rep, img := recordCorruptor(t)
	mgr = timetravel.NewManager(&fakeSource{rep: rep, img: img}, timetravel.ManagerConfig{
		MaxSessions: maxSessions,
		IdleTimeout: time.Hour,
		Engine:      timetravel.Config{CheckpointEvery: 8},
	})
	t.Cleanup(mgr.Close)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Manager: mgr, DefaultReport: defaultReport})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	js := httptest.NewServer(timetravel.NewHandler(mgr))
	t.Cleanup(js.Close)
	return l.Addr().String(), mgr, js.URL, img
}

// jsonSession drives the JSON debug API — the reference the RSP stub must
// agree with.
type jsonSession struct {
	t    *testing.T
	base string
	id   string
}

func openJSONSession(t *testing.T, base, report string) *jsonSession {
	t.Helper()
	body, _ := json.Marshal(timetravel.OpenRequest{Report: report})
	resp, err := http.Post(base+"/debug/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open JSON session: %s", resp.Status)
	}
	var info timetravel.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return &jsonSession{t: t, base: base, id: info.ID}
}

func (j *jsonSession) do(c timetravel.Command) timetravel.Outcome {
	j.t.Helper()
	body, _ := json.Marshal(c)
	resp, err := http.Post(j.base+"/debug/sessions/"+j.id+"/cmd", "application/json", bytes.NewReader(body))
	if err != nil {
		j.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out timetravel.Outcome
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		j.t.Fatal(err)
	}
	if out.Error != "" {
		j.t.Fatalf("JSON command %+v: %s", c, out.Error)
	}
	return out
}

// TestRSPConformance is the end-to-end acceptance script: a scripted RSP
// client attaches to an ingested crash report, sets a watchpoint on the
// corrupted word, reverse-continues from the end of the window, and lands
// on the mutating store with a T05watch: stop whose PC and registers
// match what the JSON debug API reports for the same report.
func TestRSPConformance(t *testing.T) {
	addr, _, jsonURL, img := startServer(t, 8, "")
	ptr := img.MustSymbol("ptr")
	store := img.MustSymbol("store")

	cl, err := Dial(addr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sup, err := cl.Exchange("qSupported:multiprocess+;swbreak+")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sup, "ReverseStep+") || !strings.Contains(sup, "ReverseContinue+") {
		t.Fatalf("qSupported = %q: reverse execution not advertised", sup)
	}
	if err := cl.StartNoAck(); err != nil {
		t.Fatal(err)
	}
	if rep, err := cl.Exchange("!"); err != nil || rep != "OK" {
		t.Fatalf("extended mode: %q, %v", rep, err)
	}
	rep, err := cl.Exchange("vAttach;r1")
	if err != nil || !strings.HasPrefix(rep, "T05") {
		t.Fatalf("vAttach = %q, %v", rep, err)
	}

	// The watchpoint → reverse-continue script, over the wire.
	if rep, err = cl.Exchange(fmt.Sprintf("Z2,%x,4", ptr)); err != nil || rep != "OK" {
		t.Fatalf("Z2 = %q, %v", rep, err)
	}
	if rep, err = cl.Exchange("c"); err != nil {
		t.Fatal(err)
	}
	if a, ok := StopWatchAddr(rep); !ok || a != ptr&^3 {
		t.Fatalf("forward watch stop = %q", rep)
	}
	if rep, err = cl.Exchange("c"); err != nil || !strings.Contains(rep, "replaylog:end") {
		t.Fatalf("c to end = %q, %v", rep, err)
	}
	if rep, err = cl.Exchange("bc"); err != nil {
		t.Fatal(err)
	}
	if a, ok := StopWatchAddr(rep); !ok || a != ptr&^3 {
		t.Fatalf("bc stop = %q, want watch:%x", rep, ptr&^3)
	}
	rspPC, ok := StopPC(rep)
	if !ok || rspPC != store {
		t.Fatalf("bc landed at %#x, want the mutating store %#x (reply %q)", rspPC, store, rep)
	}
	rspRegs, rspGPC, err := cl.ReadRegisters()
	if err != nil {
		t.Fatal(err)
	}

	// The same script over the JSON API must land in the same state.
	js := openJSONSession(t, jsonURL, "r1")
	js.do(timetravel.Command{Cmd: "watch", Addr: ptr})
	if out := js.do(timetravel.Command{Cmd: "cont"}); out.Stop != "watchpoint" {
		t.Fatalf("JSON forward stop = %q", out.Stop)
	}
	if out := js.do(timetravel.Command{Cmd: "cont"}); out.Stop != "end-of-window" {
		t.Fatalf("JSON cont = %q", out.Stop)
	}
	ref := js.do(timetravel.Command{Cmd: "rcont"})
	if ref.Stop != "watchpoint" || ref.Watch == nil || ref.Watch.Addr != ptr&^3 {
		t.Fatalf("JSON rcont = %+v", ref)
	}
	if rspPC != ref.PC {
		t.Fatalf("PC: RSP %#x vs JSON %#x", rspPC, ref.PC)
	}
	refRegs := js.do(timetravel.Command{Cmd: "regs"})
	if rspGPC != refRegs.PC {
		t.Fatalf("g PC %#x vs JSON %#x", rspGPC, refRegs.PC)
	}
	for i, r := range refRegs.Regs {
		if rspRegs[i] != r.Value {
			t.Fatalf("register %s: RSP %#x vs JSON %#x", r.Name, rspRegs[i], r.Value)
		}
	}

	// §7.1 over the wire: at the pre-commit stop the corrupted word is
	// still unavailable, and known memory reads back byte-exactly.
	if rep, err = cl.Exchange(fmt.Sprintf("m%x,4", ptr)); err != nil || rep != "xxxxxxxx" {
		t.Fatalf("m ptr = %q, %v", rep, err)
	}
	buf := img.MustSymbol("buf")
	if rep, err = cl.Exchange(fmt.Sprintf("m%x,4", buf+4)); err != nil || rep != "01000000" {
		t.Fatalf("m buf[1] = %q, %v", rep, err)
	}
	if rep, err = cl.Exchange("D"); err != nil || rep != "OK" {
		t.Fatalf("D = %q, %v", rep, err)
	}
}

// TestRSPDefaultReportAttach is the plain "target remote" flow: gdb never
// names a process, so the connection lands on -gdb-report.
func TestRSPDefaultReportAttach(t *testing.T) {
	addr, mgr, _, _ := startServer(t, 8, "r1")
	cl, err := Dial(addr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rep, err := cl.Exchange("?")
	if err != nil || !strings.HasPrefix(rep, "T05") {
		t.Fatalf("? = %q, %v", rep, err)
	}
	if mgr.Count() != 1 {
		t.Fatalf("sessions = %d", mgr.Count())
	}
	// Closing the socket without D frees the slot.
	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Count() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("disconnect leaked %d sessions", mgr.Count())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRSPConcurrentConnections multiplexes concurrent RSP debuggers over
// the session manager: every connection runs the full watch →
// reverse-continue script in parallel, the live-session count never
// exceeds the cap, and the connection past the cap is refused with an
// E-reply rather than a hang or a crash.
func TestRSPConcurrentConnections(t *testing.T) {
	const cap = 4
	addr, mgr, _, img := startServer(t, cap, "")
	ptr := img.MustSymbol("ptr")
	store := img.MustSymbol("store")

	clients := make([]*Client, cap)
	for i := range clients {
		cl, err := Dial(addr, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.StartNoAck(); err != nil {
			t.Fatal(err)
		}
		if rep, err := cl.Exchange("vAttach;r1"); err != nil || !strings.HasPrefix(rep, "T05") {
			t.Fatalf("client %d attach = %q, %v", i, rep, err)
		}
		clients[i] = cl
	}
	if n := mgr.Count(); n != cap {
		t.Fatalf("sessions after attach fan-in = %d, want %d", n, cap)
	}

	// One connection over the cap is turned away, politely.
	over, err := Dial(addr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	if rep, err := over.Exchange("vAttach;r1"); err != nil || rep != errCapacity {
		t.Fatalf("over-cap attach = %q, %v", rep, err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, cap)
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("client %d: %s", i, fmt.Sprintf(format, args...))
			}
			if rep, err := cl.Exchange(fmt.Sprintf("Z2,%x,4", ptr)); err != nil || rep != "OK" {
				fail("Z2 = %q, %v", rep, err)
				return
			}
			if rep, err := cl.Exchange("c"); err != nil || !strings.Contains(rep, "watch:") {
				fail("c = %q, %v", rep, err)
				return
			}
			if rep, err := cl.Exchange("c"); err != nil || !strings.Contains(rep, "replaylog:end") {
				fail("c end = %q, %v", rep, err)
				return
			}
			rep, err := cl.Exchange("bc")
			if err != nil {
				fail("bc: %v", err)
				return
			}
			if pc, ok := StopPC(rep); !ok || pc != store {
				fail("bc pc = %q", rep)
				return
			}
			if rep, err := cl.Exchange("D"); err != nil || rep != "OK" {
				fail("D = %q, %v", rep, err)
			}
		}(i, cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := mgr.Count(); n != 0 {
		t.Fatalf("sessions after detach = %d", n)
	}
}
