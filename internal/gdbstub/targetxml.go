package gdbstub

import (
	"fmt"
	"strings"
	"sync"

	"bugnet/internal/isa"
)

// targetXML renders the target description served via
// qXfer:features:read:target.xml. The simulated machine's register file —
// 32 general-purpose registers plus pc, RISC-V calling-convention names —
// matches riscv:rv32's org.gnu.gdb.riscv.cpu feature exactly, so the
// description claims that architecture and a stock gdb-multiarch decodes
// g/p/T packets without any bugnet-specific support. Register names come
// from isa.RegName so the wire description can never drift from the ISA.
var targetXML = sync.OnceValue(func() string {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0"?>` + "\n")
	sb.WriteString(`<!DOCTYPE target SYSTEM "gdb-target.dtd">` + "\n")
	sb.WriteString("<target version=\"1.0\">\n")
	sb.WriteString("  <architecture>riscv:rv32</architecture>\n")
	sb.WriteString("  <feature name=\"org.gnu.gdb.riscv.cpu\">\n")
	for r := 0; r < isa.NumRegs; r++ {
		fmt.Fprintf(&sb, "    <reg name=%q bitsize=\"32\" type=\"int\" regnum=\"%d\"/>\n",
			isa.RegName(uint8(r)), r)
	}
	fmt.Fprintf(&sb, "    <reg name=\"pc\" bitsize=\"32\" type=\"code_ptr\" regnum=\"%d\"/>\n", pcRegNum)
	sb.WriteString("  </feature>\n</target>\n")
	return sb.String()
})
