package gdbstub

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"bugnet/internal/isa"
	"bugnet/internal/timetravel"
)

// pcRegNum is the RSP register number of the program counter: the 32
// general-purpose registers occupy 0..31 and pc follows, matching the
// riscv:rv32 register file that target.xml declares.
const pcRegNum = isa.NumRegs

// maxMemRead caps one m-packet read in bytes. gdb sizes its reads by the
// advertised PacketSize, but the cap also defends against hand-rolled
// clients; larger requests get an error, not a truncated reply.
const maxMemRead = 4096

// Error replies. RSP error codes are two free-form hex digits; these are
// this stub's stable meanings, documented for scripted clients.
const (
	errMalformed  = "E01" // unparseable packet arguments
	errNoSession  = "E02" // no attached session and no default report
	errSessionDed = "E03" // the session died mid-connection (idle-reaped)
	errCapacity   = "E04" // the session manager's concurrency cap is reached
	errReadOnly   = "E05" // write to the deterministic replay (registers/memory)
)

// conn is one RSP connection's protocol state. The transport (server.go)
// owns the socket; conn owns the attached session and the pure
// packet-payload → reply-payload mapping, so tests drive handle directly.
type conn struct {
	srv  *Server
	sess *timetravel.Session

	// noAck is set once QStartNoAckMode takes effect; startNoAck marks the
	// switch pending until the mode command's own reply has been sent (that
	// exchange is still acknowledged).
	noAck      bool
	startNoAck bool
}

// handle maps one decoded packet payload to a reply payload. kill reports
// that the connection should close after any reply (the k packet). A
// malformed packet earns an E-reply, an unsupported one the empty reply —
// never a dropped connection, and never a dropped server.
func (cn *conn) handle(p []byte) (reply string, kill bool) {
	if len(p) == 0 {
		return "", false
	}
	s := string(p)
	switch {
	case s == "!":
		return "OK", false // extended-remote: attach/detach at will
	case s == "?":
		out, errRep := cn.do(timetravel.Command{Cmd: "where"})
		if errRep != "" {
			return errRep, false
		}
		return stopReply(out), false
	case s == "QStartNoAckMode":
		cn.startNoAck = true
		return "OK", false
	case strings.HasPrefix(s, "qSupported"):
		return fmt.Sprintf("PacketSize=%x;QStartNoAckMode+;qXfer:features:read+;"+
			"ReverseStep+;ReverseContinue+;swbreak+;hwbreak+;vContSupported+;qAttached+", maxMemRead), false
	case s == "qAttached":
		return "1", false // debugging an existing recording: detach, don't kill
	case s == "qC":
		return "QC1", false
	case s == "qfThreadInfo":
		return "m1", false
	case s == "qsThreadInfo":
		return "l", false
	case strings.HasPrefix(s, "qXfer:features:read:"):
		return cn.readFeatures(s[len("qXfer:features:read:"):]), false
	case strings.HasPrefix(s, "vAttach;"):
		return cn.attach(s[len("vAttach;"):]), false
	case s == "vCont?":
		return "vCont;c;C;s;S", false
	case strings.HasPrefix(s, "vCont;"):
		return cn.vCont(s[len("vCont;"):]), false
	case s[0] == 'q' || s[0] == 'v':
		return "", false // unknown query/v-packet: explicitly unsupported
	case s[0] == 'H':
		return "OK", false // thread-select: there is only thread 1
	case s[0] == 'T':
		return "OK", false // thread-alive: the replayed thread always is
	case s == "g":
		return cn.readRegs(), false
	case s[0] == 'p':
		return cn.readReg(s[1:]), false
	case s[0] == 'G' || s[0] == 'P' || s[0] == 'M' || s[0] == 'X':
		// The replay is deterministic history; nothing is writable.
		return errReadOnly, false
	case s[0] == 'm':
		return cn.readMem(s[1:]), false
	case s[0] == 'Z' || s[0] == 'z':
		return cn.breakpoint(s), false
	case s == "s":
		return cn.motion("step"), false
	case s == "c":
		return cn.motion("cont"), false
	case s == "bs":
		return cn.motion("rstep"), false
	case s == "bc":
		return cn.motion("rcont"), false
	case s[0] == 's' || s[0] == 'c':
		// Resume-at-address rewrites history; a replay cannot.
		return errMalformed, false
	case strings.HasPrefix(s, "D"):
		cn.detach()
		return "OK", false
	case s == "k":
		cn.detach()
		return "", true
	}
	return "", false
}

// ensure lazily attaches the connection to the server's default report,
// so a plain "target remote" session (which never sends vAttach) lands on
// the report the operator selected with -gdb-report.
func (cn *conn) ensure() string {
	if cn.sess != nil {
		return ""
	}
	if cn.srv == nil || cn.srv.cfg.DefaultReport == "" {
		return errNoSession
	}
	return cn.open(cn.srv.cfg.DefaultReport)
}

// open attaches a manager session over the report, mapping open failures
// onto stable E-codes.
func (cn *conn) open(report string) string {
	s, err := cn.srv.cfg.Manager.Open(report, -1)
	switch {
	case errors.Is(err, timetravel.ErrUnknownReport):
		return errNoSession
	case errors.Is(err, timetravel.ErrSessionLimit):
		return errCapacity
	case err != nil:
		return errNoSession
	}
	cn.sess = s
	return ""
}

// attach implements vAttach;<report-id>: the "pid" is a stored report's
// content address, selected per connection. Re-attaching drops the old
// session first so one connection never holds two cap slots.
func (cn *conn) attach(report string) string {
	if report == "" {
		return errMalformed
	}
	cn.detach()
	if rep := cn.open(report); rep != "" {
		return rep
	}
	out, errRep := cn.do(timetravel.Command{Cmd: "where"})
	if errRep != "" {
		return errRep
	}
	return stopReply(out)
}

// detach closes the attached session, if any. Idempotent.
func (cn *conn) detach() {
	if cn.sess != nil {
		cn.srv.cfg.Manager.CloseSession(cn.sess.ID)
		cn.sess = nil
	}
}

// do runs one command against the attached (or default) session. A
// non-empty errRep is the E-packet to send instead of a real reply.
func (cn *conn) do(c timetravel.Command) (timetravel.Outcome, string) {
	if rep := cn.ensure(); rep != "" {
		return timetravel.Outcome{}, rep
	}
	out := cn.sess.Do(c)
	if out.Error != "" && out.Window == 0 {
		// "session closed": the idle janitor reaped it between packets.
		// Drop our handle so the next command can re-attach.
		cn.detach()
		return out, errSessionDed
	}
	return out, ""
}

// motion runs one motion command (step/cont and the reverse pair behind
// the bs/bc extensions) and renders the resulting stop reply.
func (cn *conn) motion(cmd string) string {
	out, errRep := cn.do(timetravel.Command{Cmd: cmd})
	if errRep != "" {
		return errRep
	}
	return stopReply(out)
}

// vCont executes the first action of a vCont packet. The engine replays
// one thread, so thread-qualified action lists collapse to their first
// action; signals are accepted and ignored (a replay cannot take one).
func (cn *conn) vCont(actions string) string {
	first, _, _ := strings.Cut(actions, ";")
	first, _, _ = strings.Cut(first, ":")
	if first == "" {
		return errMalformed
	}
	switch first[0] {
	case 'c', 'C':
		return cn.motion("cont")
	case 's', 'S':
		return cn.motion("step")
	}
	return errMalformed
}

// stopReply renders an Outcome as a T05 stop-reply packet. Watchpoint
// stops carry the watch:<addr> pair (both directions — reverse lands on
// the mutating instruction, forward just after it), breakpoint stops
// swbreak, and window edges the replaylog markers gdb's record targets
// use. The PC rides along as a register pair so scripted clients need no
// follow-up g packet.
func stopReply(out timetravel.Outcome) string {
	var sb strings.Builder
	sb.WriteString("T05")
	switch out.Stop {
	case "watchpoint":
		if out.Watch != nil {
			fmt.Fprintf(&sb, "watch:%x;", out.Watch.Addr)
		}
	case "breakpoint":
		sb.WriteString("swbreak:;")
	case "end-of-window":
		sb.WriteString("replaylog:end;")
	case "start-of-window":
		sb.WriteString("replaylog:begin;")
	}
	fmt.Fprintf(&sb, "thread:1;%x:%s;", pcRegNum, hexWordLE(out.PC))
	return sb.String()
}

// readRegs implements g: every general-purpose register then the PC, each
// as little-endian hex, in target.xml's declared order.
func (cn *conn) readRegs() string {
	out, errRep := cn.do(timetravel.Command{Cmd: "regs"})
	if errRep != "" {
		return errRep
	}
	var sb strings.Builder
	for _, r := range out.Regs {
		sb.WriteString(hexWordLE(r.Value))
	}
	sb.WriteString(hexWordLE(out.PC))
	return sb.String()
}

// readReg implements p<n>: one register by RSP number.
func (cn *conn) readReg(arg string) string {
	n, err := strconv.ParseUint(arg, 16, 32)
	if err != nil || n > pcRegNum {
		return errMalformed
	}
	out, errRep := cn.do(timetravel.Command{Cmd: "regs"})
	if errRep != "" {
		return errRep
	}
	if n == pcRegNum {
		return hexWordLE(out.PC)
	}
	return hexWordLE(out.Regs[n].Value)
}

// readMem implements m<addr>,<len>: a byte-granular read layered over the
// engine's word-granular mem command, chunked by the command layer's
// MaxMemWords cap. Bytes the recorded window never touched are reported
// as the "xx" unavailable marker (§7.1: BugNet ships no core dump), so
// gdb shows exactly what the recording can prove.
func (cn *conn) readMem(arg string) string {
	addrStr, lenStr, ok := strings.Cut(arg, ",")
	if !ok {
		return errMalformed
	}
	addr64, err1 := strconv.ParseUint(addrStr, 16, 32)
	length, err2 := strconv.ParseUint(lenStr, 16, 32)
	if err1 != nil || err2 != nil || length == 0 || length > maxMemRead {
		return errMalformed
	}
	addr := uint32(addr64)
	if uint64(addr)+length-1 > 0xFFFF_FFFF {
		return errMalformed // the read would wrap the address space
	}
	first := addr &^ 3
	last := (addr + uint32(length) - 1) &^ 3
	totalWords := uint64(last-first)/4 + 1
	words := make([]timetravel.Word, 0, totalWords)
	for off := uint64(0); off < totalWords; off += timetravel.MaxMemWords {
		n := totalWords - off
		if n > timetravel.MaxMemWords {
			n = timetravel.MaxMemWords
		}
		out, errRep := cn.do(timetravel.Command{Cmd: "mem", Addr: first + uint32(off)*4, N: n})
		if errRep != "" {
			return errRep
		}
		words = append(words, out.Mem...)
	}
	data, known := timetravel.BytesFromWords(words, addr, int(length))
	var sb strings.Builder
	sb.Grow(2 * len(data))
	for i, b := range data {
		if known[i] {
			sb.WriteByte(hexDigits[b>>4])
			sb.WriteByte(hexDigits[b&0xf])
		} else {
			sb.WriteString("xx")
		}
	}
	return sb.String()
}

// breakpoint implements Z/z: Z0/Z1 (software/hardware breakpoints — both
// PC traps here, replay has no real text to patch) map to break/delete,
// and Z2–Z4 (write/read/access watchpoints) all map to the engine's data
// watchpoints, which fire on any change of the watched word's known value
// — the §7.1 superset of all three kinds.
func (cn *conn) breakpoint(s string) string {
	parts := strings.Split(s[1:], ",")
	if len(parts) < 2 || parts[0] == "" {
		return errMalformed
	}
	addr64, err := strconv.ParseUint(parts[1], 16, 32)
	if err != nil {
		return errMalformed
	}
	addr := uint32(addr64)
	insert := s[0] == 'Z'
	var cmd string
	switch parts[0][0] {
	case '0', '1':
		cmd = "break"
		if !insert {
			cmd = "delete"
		}
	case '2', '3', '4':
		cmd = "watch"
		if !insert {
			cmd = "unwatch"
		}
	default:
		return "" // unsupported breakpoint type
	}
	out, errRep := cn.do(timetravel.Command{Cmd: cmd, Addr: addr})
	if errRep != "" {
		return errRep
	}
	if out.Error != "" {
		return errMalformed
	}
	return "OK"
}

// readFeatures implements qXfer:features:read — the target.xml transfer
// that teaches gdb this machine's register file.
func (cn *conn) readFeatures(arg string) string {
	annex, rng, ok := strings.Cut(arg, ":")
	if !ok || annex != "target.xml" {
		return "E00"
	}
	offStr, lenStr, ok := strings.Cut(rng, ",")
	if !ok {
		return errMalformed
	}
	off, err1 := strconv.ParseUint(offStr, 16, 32)
	n, err2 := strconv.ParseUint(lenStr, 16, 32)
	if err1 != nil || err2 != nil {
		return errMalformed
	}
	xml := targetXML()
	if off >= uint64(len(xml)) {
		return "l"
	}
	end := off + n
	if end >= uint64(len(xml)) {
		return "l" + xml[off:]
	}
	return "m" + xml[off:end]
}

// hexWordLE renders a 32-bit value as eight hex digits in target byte
// order (little-endian), the encoding g/p/T replies use.
func hexWordLE(v uint32) string {
	var b [8]byte
	for i := 0; i < 4; i++ {
		by := byte(v >> (8 * i))
		b[2*i] = hexDigits[by>>4]
		b[2*i+1] = hexDigits[by&0xf]
	}
	return string(b[:])
}
