package timetravel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bugnet/internal/asm"
	"bugnet/internal/core"
)

// fakeSource serves one in-memory report under the id "r1" and counts
// open pins.
type fakeSource struct {
	rep  *core.CrashReport
	img  *asm.Image
	pins atomic.Int32
}

func (f *fakeSource) OpenReport(id string) (*core.CrashReport, *asm.Image, func(), error) {
	if id != "r1" {
		return nil, nil, nil, fmt.Errorf("%w: %q", ErrUnknownReport, id)
	}
	f.pins.Add(1)
	var released atomic.Bool
	return f.rep, f.img, func() {
		if released.CompareAndSwap(false, true) {
			f.pins.Add(-1)
		}
	}, nil
}

func newFakeSource(t testing.TB) *fakeSource {
	t.Helper()
	rep, img := recordCrash(t, corruptorProgram, 16)
	return &fakeSource{rep: rep, img: img}
}

func TestManagerLifecycleAndCap(t *testing.T) {
	src := newFakeSource(t)
	m := NewManager(src, ManagerConfig{MaxSessions: 2, IdleTimeout: time.Hour})
	defer m.Close()

	s1, err := m.Open("r1", -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = m.Open("r1", -1); err != nil {
		t.Fatal(err)
	}
	if src.pins.Load() != 2 {
		t.Fatalf("pins = %d", src.pins.Load())
	}
	// Cap reached.
	if _, err = m.Open("r1", -1); err == nil {
		t.Fatal("expected session-limit error")
	}
	// Unknown report.
	if _, err = m.Open("nope", -1); err == nil {
		t.Fatal("expected unknown-report error")
	}
	// Closing frees a slot and the pin.
	if !m.CloseSession(s1.ID) {
		t.Fatal("close failed")
	}
	if src.pins.Load() != 1 {
		t.Fatalf("pins after close = %d", src.pins.Load())
	}
	if _, err = m.Open("r1", -1); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	// Commands on a closed session fail cleanly.
	if out := s1.Do(Command{Cmd: "where"}); out.Error == "" {
		t.Fatal("closed session must refuse commands")
	}
	m.Close()
	if src.pins.Load() != 0 {
		t.Fatalf("pins after manager close = %d", src.pins.Load())
	}
	if _, err = m.Open("r1", -1); err == nil {
		t.Fatal("open after Close must fail")
	}
}

func TestManagerIdleExpiry(t *testing.T) {
	src := newFakeSource(t)
	m := NewManager(src, ManagerConfig{IdleTimeout: time.Minute})
	defer m.Close()
	clock := time.Now()
	m.now = func() time.Time { return clock }

	s, err := m.Open("r1", -1)
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(30 * time.Second)
	if n := m.Sweep(); n != 0 {
		t.Fatalf("swept %d sessions early", n)
	}
	// Activity refreshes the deadline.
	s.Do(Command{Cmd: "step"})
	clock = clock.Add(45 * time.Second)
	if n := m.Sweep(); n != 0 {
		t.Fatalf("active session swept (%d)", n)
	}
	clock = clock.Add(time.Hour)
	if n := m.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if src.pins.Load() != 0 {
		t.Fatalf("pins after expiry = %d", src.pins.Load())
	}
	if _, ok := m.Get(s.ID); ok {
		t.Fatal("expired session still listed")
	}
}

func TestManagerRejectsOversizedWindow(t *testing.T) {
	src := newFakeSource(t)
	m := NewManager(src, ManagerConfig{MaxWindow: 3})
	defer m.Close()
	if _, err := m.Open("r1", -1); err == nil {
		t.Fatal("oversized window must be refused")
	}
	if src.pins.Load() != 0 {
		t.Fatalf("refused open leaked a pin (%d)", src.pins.Load())
	}
}

func TestHTTPDebugAPI(t *testing.T) {
	src := newFakeSource(t)
	m := NewManager(src, ManagerConfig{MaxSessions: 2, IdleTimeout: time.Hour})
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	post := func(path string, body any, want int) *http.Response {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != want {
			t.Fatalf("POST %s: %s, want %d", path, resp.Status, want)
		}
		return resp
	}

	// Open.
	resp := post("/debug/sessions", OpenRequest{Report: "r1"}, http.StatusCreated)
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.ID == "" || info.Window == 0 || info.Fault == nil {
		t.Fatalf("open info = %+v", info)
	}

	// Unknown report is 404; garbage is 400.
	post("/debug/sessions", OpenRequest{Report: "nope"}, http.StatusNotFound).Body.Close()
	resp, err := http.Post(srv.URL+"/debug/sessions", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage open: %s", resp.Status)
	}

	// Command round trip.
	resp = post("/debug/sessions/"+info.ID+"/cmd", Command{Cmd: "step", N: 5}, http.StatusOK)
	var out Outcome
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Pos != 5 || out.Stop != "step" {
		t.Fatalf("step outcome = %+v", out)
	}

	// Listing.
	resp, err = http.Get(srv.URL + "/debug/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list []SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Pos != 5 {
		t.Fatalf("list = %+v", list)
	}

	// Second session hits the cap at three.
	post("/debug/sessions", OpenRequest{Report: "r1"}, http.StatusCreated).Body.Close()
	post("/debug/sessions", OpenRequest{Report: "r1"}, http.StatusTooManyRequests).Body.Close()

	// Delete.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/debug/sessions/"+info.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %s", resp.Status)
	}
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %s", resp.Status)
	}

	// Commands against a deleted session 404.
	post("/debug/sessions/"+info.ID+"/cmd", Command{Cmd: "where"}, http.StatusNotFound).Body.Close()
}
