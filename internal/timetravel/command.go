package timetravel

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"bugnet/internal/cpu"
	"bugnet/internal/isa"
)

// Command is one debugger operation, the wire format of the remote debug
// protocol (POST /debug/sessions/{id}/cmd) and the unit the local CLI
// dispatches. Addresses may be given numerically (Addr) or symbolically
// (Sym, resolved against the session's binary — the server has the image,
// the remote client need not).
type Command struct {
	// Cmd selects the operation: step, rstep, cont, rcont, seek, runto,
	// break, delete, watch, unwatch, regs, mem, backtrace, where.
	Cmd string `json:"cmd"`
	// N is the step/rstep count (default 1), the mem word count, or the
	// backtrace depth.
	N uint64 `json:"n,omitempty"`
	// Addr is the target address for break/delete/watch/unwatch/mem.
	Addr uint32 `json:"addr,omitempty"`
	// Sym names a symbol (or a hex/decimal literal) to resolve against
	// the session's image instead of Addr.
	Sym string `json:"sym,omitempty"`
	// Pos is the absolute target for seek.
	Pos uint64 `json:"pos,omitempty"`
}

// MaxMemWords bounds one mem read so a remote client cannot stream the
// whole address space through a single command. A mem command asking for
// more is clamped to this many words and its Outcome reports
// Truncated=true — never silently, so byte-granular consumers (the RSP
// stub chunks its reads by this cap) and humans alike can tell a short
// read from a short request.
const MaxMemWords = 256

// RegValue is one architectural register in an Outcome.
type RegValue struct {
	Name  string `json:"name"`
	Value uint32 `json:"value"`
}

// Word is one inspected memory word. Known follows §7.1: false means the
// recorded window never touched the location and its value is unavailable.
type Word struct {
	Addr  uint32 `json:"addr"`
	Value uint32 `json:"value"`
	Known bool   `json:"known"`
}

// Frame is one backtrace entry.
type Frame struct {
	PC     uint32 `json:"pc"`
	Symbol string `json:"symbol"`
	Disasm string `json:"disasm"`
}

// FaultDesc describes the recorded crash of the debugged thread.
type FaultDesc struct {
	PC     uint32 `json:"pc"`
	Symbol string `json:"symbol"`
	Disasm string `json:"disasm"`
	Cause  string `json:"cause"`
}

// Outcome is the result of one Command: where the replay now stands, why
// it stopped, and whatever the command asked to inspect.
type Outcome struct {
	Stop   string `json:"stop,omitempty"` // set by motion commands
	Pos    uint64 `json:"pos"`
	Window uint64 `json:"window"`
	Done   bool   `json:"done,omitempty"`
	PC     uint32 `json:"pc"`
	Symbol string `json:"symbol"`
	Disasm string `json:"disasm"`

	Regs []RegValue `json:"regs,omitempty"`
	Mem  []Word     `json:"mem,omitempty"`
	// Truncated marks a mem read clamped at MaxMemWords: Mem holds fewer
	// words than the command asked for, and the tail was never read.
	Truncated bool      `json:"truncated,omitempty"`
	Backtrace []Frame   `json:"backtrace,omitempty"`
	Breaks    []uint32  `json:"breaks,omitempty"`
	Watches   []uint32  `json:"watches,omitempty"`
	Watch     *WatchHit `json:"watch,omitempty"` // set on a watchpoint stop
	Error     string    `json:"error,omitempty"`
}

// status fills the always-present position fields.
func (e *Engine) status(out *Outcome) {
	out.Pos = e.Pos()
	out.Window = e.Window()
	out.Done = e.Done()
	out.PC = e.PC()
	out.Symbol = e.SymbolAt(e.PC())
	out.Disasm = e.Disasm(e.PC())
}

// resolveAddr turns a Command's Sym/Addr into an address. The parse order
// is explicit: a symbol in the session's image always wins; failing that,
// a "0x" prefix selects hex, bare digits parse as decimal, and anything
// else is a resolution error. A numeric-looking token like "10" therefore
// means ten, never 0x10 — the old symbol→hex→decimal cascade made bare
// digits ambiguous.
func (e *Engine) resolveAddr(c Command) (uint32, error) {
	if c.Sym == "" {
		return c.Addr, nil
	}
	if addr, ok := e.img.Symbol(c.Sym); ok {
		return addr, nil
	}
	if rest, ok := strings.CutPrefix(c.Sym, "0x"); ok {
		if v, err := strconv.ParseUint(rest, 16, 32); err == nil {
			return uint32(v), nil
		}
		return 0, fmt.Errorf("cannot resolve %q: bad hex literal", c.Sym)
	}
	if v, err := strconv.ParseUint(c.Sym, 10, 32); err == nil {
		return uint32(v), nil
	}
	return 0, fmt.Errorf("cannot resolve %q", c.Sym)
}

// Exec runs one command against the engine and reports the outcome. All
// failures are carried in Outcome.Error: a malformed command must not tear
// down the session (or the server) it runs in.
func (e *Engine) Exec(c Command) Outcome {
	start := time.Now()
	out := e.exec(c)
	observeCommand(c.Cmd, start)
	return out
}

func (e *Engine) exec(c Command) Outcome {
	var out Outcome
	count := c.N
	if count == 0 {
		count = 1
	}
	fail := func(err error) Outcome {
		out.Error = err.Error()
		e.status(&out)
		return out
	}
	motion := func(reason StopReason, err error) Outcome {
		if err != nil {
			out.Error = err.Error()
		}
		out.Stop = reason.String()
		if reason == StopWatch {
			out.Watch = e.LastWatch()
		}
		e.status(&out)
		return out
	}

	switch c.Cmd {
	case "step":
		return motion(e.Step(count))
	case "rstep":
		return motion(e.ReverseStep(count))
	case "cont", "continue":
		return motion(e.Continue())
	case "rcont":
		return motion(e.ReverseContinue())
	case "seek":
		if err := e.SeekTo(c.Pos); err != nil {
			return fail(err)
		}
		out.Stop = StopStep.String()
		e.status(&out)
		return out
	case "runto":
		addr, err := e.resolveAddr(c)
		if err != nil {
			return fail(err)
		}
		had := e.breaks[addr]
		e.AddBreak(addr)
		reason, rerr := e.Continue()
		if !had {
			e.ClearBreak(addr)
		}
		return motion(reason, rerr)
	case "break":
		addr, err := e.resolveAddr(c)
		if err != nil {
			return fail(err)
		}
		e.AddBreak(addr)
		out.Breaks = e.Breakpoints()
	case "delete":
		addr, err := e.resolveAddr(c)
		if err != nil {
			return fail(err)
		}
		e.ClearBreak(addr)
		out.Breaks = e.Breakpoints()
	case "watch":
		addr, err := e.resolveAddr(c)
		if err != nil {
			return fail(err)
		}
		e.AddWatch(addr)
		out.Watches = e.Watches()
	case "unwatch":
		addr, err := e.resolveAddr(c)
		if err != nil {
			return fail(err)
		}
		e.ClearWatch(addr)
		out.Watches = e.Watches()
	case "regs":
		st := e.Registers()
		out.Regs = make([]RegValue, isa.NumRegs)
		for i := range st.Regs {
			out.Regs[i] = RegValue{Name: isa.RegName(uint8(i)), Value: st.Regs[i]}
		}
	case "mem":
		addr, err := e.resolveAddr(c)
		if err != nil {
			return fail(err)
		}
		if count > MaxMemWords {
			count = MaxMemWords
			out.Truncated = true
		}
		addr &^= 3
		for i := uint64(0); i < count; i++ {
			a := addr + uint32(i)*4
			v, known := e.ReadWord(a)
			out.Mem = append(out.Mem, Word{Addr: a, Value: v, Known: known})
		}
	case "backtrace", "bt":
		tr := e.Backtrace()
		if c.N > 0 && uint64(len(tr)) > c.N {
			tr = tr[uint64(len(tr))-c.N:]
		}
		for _, te := range tr {
			out.Backtrace = append(out.Backtrace, Frame{
				PC: te.PC, Symbol: e.SymbolAt(te.PC), Disasm: e.Disasm(te.PC)})
		}
	case "where", "":
		// Status only.
	default:
		return fail(fmt.Errorf("unknown command %q", c.Cmd))
	}
	e.status(&out)
	return out
}

// faultDesc renders the engine's recorded crash, if any.
func (e *Engine) faultDesc() *FaultDesc {
	f := e.Fault()
	if f == nil {
		return nil
	}
	return &FaultDesc{
		PC:     f.PC,
		Symbol: e.SymbolAt(f.PC),
		Disasm: e.Disasm(f.PC),
		Cause:  cpu.FaultCause(f.Cause).String(),
	}
}
