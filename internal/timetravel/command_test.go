package timetravel

import (
	"strings"
	"testing"
)

// TestResolveAddrOrder pins the documented resolution order: image symbol
// first, then "0x"-prefixed hex, then bare digits as decimal — never the
// old symbol→hex→decimal cascade that read "10" as 0x10.
func TestResolveAddrOrder(t *testing.T) {
	eng, img := newTestEngine(t, 8)
	store := img.MustSymbol("store")

	breakAt := func(sym string) Outcome {
		t.Helper()
		out := eng.Exec(Command{Cmd: "break", Sym: sym})
		eng.Exec(Command{Cmd: "delete", Sym: sym})
		return out
	}

	if out := breakAt("store"); out.Error != "" || len(out.Breaks) != 1 || out.Breaks[0] != store {
		t.Fatalf("symbol resolution: %+v", out)
	}
	if out := breakAt("10"); out.Error != "" || len(out.Breaks) != 1 || out.Breaks[0] != 10 {
		t.Fatalf("bare digits must parse as decimal: %+v", out)
	}
	if out := breakAt("0x10"); out.Error != "" || len(out.Breaks) != 1 || out.Breaks[0] != 16 {
		t.Fatalf("0x prefix must parse as hex: %+v", out)
	}
	if out := eng.Exec(Command{Cmd: "break", Sym: "0xzz"}); out.Error == "" {
		t.Fatal("bad hex literal must be an error, not a symbol miss")
	}
	if out := eng.Exec(Command{Cmd: "break", Sym: "nosuchsym"}); !strings.Contains(out.Error, "nosuchsym") {
		t.Fatalf("unknown symbol error = %q", out.Error)
	}
	// A decimal that overflows 32 bits is an error, not a wrap.
	if out := eng.Exec(Command{Cmd: "break", Sym: "4294967296"}); out.Error == "" {
		t.Fatal("33-bit decimal literal must fail to resolve")
	}
}

// TestMemReadTruncation pins the satellite fix: a mem command past
// MaxMemWords is clamped and says so, instead of silently shortening the
// reply.
func TestMemReadTruncation(t *testing.T) {
	eng, img := newTestEngine(t, 8)
	buf := img.MustSymbol("buf")
	eng.Exec(Command{Cmd: "cont"}) // populate memory state

	out := eng.Exec(Command{Cmd: "mem", Addr: buf, N: MaxMemWords * 2})
	if out.Error != "" {
		t.Fatal(out.Error)
	}
	if len(out.Mem) != MaxMemWords {
		t.Fatalf("clamped read returned %d words, want %d", len(out.Mem), MaxMemWords)
	}
	if !out.Truncated {
		t.Fatal("clamped read must set Truncated")
	}

	out = eng.Exec(Command{Cmd: "mem", Addr: buf, N: MaxMemWords})
	if out.Truncated || len(out.Mem) != MaxMemWords {
		t.Fatalf("exact-cap read: truncated=%v len=%d", out.Truncated, len(out.Mem))
	}
	out = eng.Exec(Command{Cmd: "mem", Addr: buf, N: 4})
	if out.Truncated || len(out.Mem) != 4 {
		t.Fatalf("small read: truncated=%v len=%d", out.Truncated, len(out.Mem))
	}
}
