package timetravel

import (
	"reflect"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/kernel"
)

// parScanProgram gives the reverse scan a long multithreaded history:
// the worker increments a shared word a hundred times and then crashes,
// so thread 1's window holds many checkpoint gaps with both breakpoint
// and watchpoint stops scattered through them.
const parScanProgram = `
        .data
shared: .word 0
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
mspin:  j    mspin           # main spins forever; worker crashes
worker: li   t0, 100
        la   t1, shared
wloop:  lw   t2, (t1)
        addi t2, t2, 1
wstore: sw   t2, (t1)
        addi t0, t0, -1
        bnez t0, wloop
boom:   lw   a0, (zero)
`

// stop is one observed ReverseContinue stop, captured for comparison.
type stop struct {
	reason StopReason
	pos    uint64
	pc     uint32
	regs   [32]uint32
	watch  *WatchHit
}

// reverseWalk seeks the engine to the end of its window and then
// reverse-continues all the way back to the start, recording every stop.
func reverseWalk(t *testing.T, e *Engine) []stop {
	t.Helper()
	if err := e.SeekTo(e.Window()); err != nil {
		t.Fatal(err)
	}
	var stops []stop
	for {
		reason, err := e.ReverseContinue()
		if err != nil {
			t.Fatalf("reverse-continue after %d stops: %v", len(stops), err)
		}
		stops = append(stops, stop{reason, e.Pos(), e.PC(), e.Registers().Regs, e.LastWatch()})
		if reason == StopStart {
			return stops
		}
		if len(stops) > 10_000 {
			t.Fatal("reverse walk does not terminate")
		}
	}
}

// TestReverseContinueParallelParity is the determinism property of the
// speculative scan: for every stop of a full reverse walk — breakpoints,
// watchpoints, and the final window start — the parallel engine lands on
// the same position, reason, registers, and watch transition as the
// sequential one. Run under -race this also exercises the scan workers'
// concurrent execution over shared copy-on-write snapshots.
func TestReverseContinueParallelParity(t *testing.T) {
	stRep, stImg := recordCrash(t, corruptorProgram, 16)

	mtImg := asm.MustAssemble("parscan.s", parScanProgram)
	mtRes, mtRep, _ := core.Record(mtImg, kernel.Config{Cores: 2},
		core.Config{IntervalLength: 32, Cache: tinyCache()})
	if mtRes.Crash == nil || mtRes.Crash.TID != 1 {
		t.Fatalf("mt crash = %+v", mtRes.Crash)
	}

	cases := []struct {
		name  string
		rep   *core.CrashReport
		img   *asm.Image
		tid   int
		setup func(e *Engine, img *asm.Image)
	}{
		{"breakpoints", stRep, stImg, -1, func(e *Engine, img *asm.Image) {
			e.AddBreak(img.MustSymbol("store"))
		}},
		{"watchpoint", stRep, stImg, -1, func(e *Engine, img *asm.Image) {
			e.AddWatch(img.MustSymbol("ptr"))
		}},
		{"multithread-mixed", mtRep, mtImg, 1, func(e *Engine, img *asm.Image) {
			e.AddBreak(img.MustSymbol("wstore"))
			e.AddWatch(img.MustSymbol("shared"))
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			walk := func(par int) []stop {
				e, _, err := NewEngineForThread(tc.img, tc.rep, tc.tid,
					Config{CheckpointEvery: 8, ScanParallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				tc.setup(e, tc.img)
				stops := reverseWalk(t, e)
				if par > 1 && len(e.scanners) == 0 {
					t.Fatal("parallel engine never engaged the speculative scan")
				}
				return stops
			}
			seq := walk(1)
			for _, par := range []int{2, 8} {
				got := walk(par)
				if !reflect.DeepEqual(got, seq) {
					t.Errorf("parallelism %d: %d stops vs %d sequential", par, len(got), len(seq))
					for i := 0; i < len(got) && i < len(seq); i++ {
						if !reflect.DeepEqual(got[i], seq[i]) {
							t.Errorf("first divergence at stop %d:\n par: %+v\n seq: %+v",
								i, got[i], seq[i])
							break
						}
					}
				}
			}
			if len(seq) < 2 {
				t.Fatalf("scenario too weak: only %d stops", len(seq))
			}
		})
	}
}

// TestReverseContinueParallelSparseCheckpoints pins the speculative scan
// against an eviction-thinned checkpoint grid: with the budget forcing
// everything but the anchor and the newest checkpoint out, the gap
// decomposition degenerates to one or two wide gaps and the parallel walk
// must still land exactly where the sequential one does.
func TestReverseContinueParallelSparseCheckpoints(t *testing.T) {
	rep, img := recordCrash(t, corruptorProgram, 16)
	walk := func(par int) []stop {
		e, _, err := NewEngineForThread(img, rep, -1, Config{
			CheckpointEvery:  4,
			CheckpointBudget: 1,
			ScanParallelism:  par,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.AddBreak(img.MustSymbol("store"))
		e.AddWatch(img.MustSymbol("ptr"))
		return reverseWalk(t, e)
	}
	seq := walk(1)
	if got := walk(4); !reflect.DeepEqual(got, seq) {
		t.Errorf("sparse-grid parallel walk diverges:\n par: %+v\n seq: %+v", got, seq)
	}
}
