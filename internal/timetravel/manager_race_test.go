package timetravel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The manager's concurrency invariants, exercised under -race: the idle
// sweep racing in-flight commands, the cap under an open stampede, and
// CloseSession against a session mid-command.

// TestManagerSweepRacesDo hammers Sweep from several goroutines while
// sessions run commands and get reopened as the sweep reaps them. The
// invariants: no session is torn down mid-command (Do either completes or
// reports "session closed", never crashes), and every pin is released by
// the end.
func TestManagerSweepRacesDo(t *testing.T) {
	src := newFakeSource(t)
	// A timeout short enough that real time expires sessions between
	// commands; the janitor's 1s floor keeps it out of the way, so the
	// hammering goroutines below are the only sweepers.
	m := NewManager(src, ManagerConfig{MaxSessions: 4, IdleTimeout: 2 * time.Millisecond})
	defer m.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.Sweep()
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s *Session
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s == nil {
					var err error
					if s, err = m.Open("r1", -1); err != nil {
						if !errors.Is(err, ErrSessionLimit) {
							t.Errorf("open: %v", err)
							return
						}
						continue
					}
				}
				out := s.Do(Command{Cmd: "cont"})
				if out.Error != "" {
					s = nil // reaped between commands: reopen
					continue
				}
				s.Do(Command{Cmd: "seek"})
				time.Sleep(time.Millisecond) // let the sweep win sometimes
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	m.Close()
	if n := src.pins.Load(); n != 0 {
		t.Fatalf("pins after close = %d", n)
	}
}

// TestManagerConcurrentOpenCap stampedes Open from many goroutines at
// once: exactly MaxSessions may win, every loser gets ErrSessionLimit, and
// losers release their report pins.
func TestManagerConcurrentOpenCap(t *testing.T) {
	const cap = 4
	src := newFakeSource(t)
	m := NewManager(src, ManagerConfig{MaxSessions: cap, IdleTimeout: time.Hour})
	defer m.Close()

	var (
		wg   sync.WaitGroup
		won  atomic.Int32
		lost atomic.Int32
	)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.Open("r1", -1)
			switch {
			case err == nil:
				won.Add(1)
			case errors.Is(err, ErrSessionLimit):
				lost.Add(1)
			default:
				t.Errorf("open: %v", err)
			}
		}()
	}
	wg.Wait()
	if won.Load() != cap || lost.Load() != 32-cap {
		t.Fatalf("won=%d lost=%d, want %d/%d", won.Load(), lost.Load(), cap, 32-cap)
	}
	if m.Count() != cap {
		t.Fatalf("count = %d", m.Count())
	}
	if src.pins.Load() != cap {
		t.Fatalf("pins = %d: a losing Open leaked its pin", src.pins.Load())
	}
	m.Close()
	if src.pins.Load() != 0 {
		t.Fatalf("pins after close = %d", src.pins.Load())
	}
}

// TestManagerCloseSessionDuringInflight closes sessions while commands are
// running on them. Do holds the session mutex for the duration of each
// command, so close() serializes behind it: the in-flight command finishes
// on a live engine, later ones get the closed-session error, and the pin
// drops exactly once.
func TestManagerCloseSessionDuringInflight(t *testing.T) {
	src := newFakeSource(t)
	m := NewManager(src, ManagerConfig{MaxSessions: 2, IdleTimeout: time.Hour})
	defer m.Close()

	for round := 0; round < 50; round++ {
		s, err := m.Open("r1", -1)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if out := s.Do(Command{Cmd: "rcont"}); out.Error != "" {
					if out.Error != "session closed" {
						t.Errorf("round %d: %q", round, out.Error)
					}
					return
				}
				if out := s.Do(Command{Cmd: "cont"}); out.Error != "" {
					if out.Error != "session closed" {
						t.Errorf("round %d: %q", round, out.Error)
					}
					return
				}
			}
		}()
		if !m.CloseSession(s.ID) {
			t.Fatalf("round %d: close failed", round)
		}
		wg.Wait()
		if n := src.pins.Load(); n != 0 {
			t.Fatalf("round %d: pins = %d", round, n)
		}
	}
}
