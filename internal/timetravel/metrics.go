package timetravel

import (
	"time"

	"bugnet/internal/obs"
)

// Debug-session metrics. The session gauge tracks membership in the
// manager's table (registered in Open, removed by CloseSession, Sweep,
// or manager Close), so it balances no matter which teardown path runs.
var (
	mSessionsOpen = obs.Default.Gauge("bugnet_debug_sessions_open",
		"Debug sessions currently open.")
	mSessionsOpened = obs.Default.Counter("bugnet_debug_sessions_opened_total",
		"Debug sessions opened.")
	mSessionsReaped = obs.Default.Counter("bugnet_debug_sessions_reaped_total",
		"Debug sessions closed by the idle sweeper.")
	sessionRejects = obs.Default.CounterVec("bugnet_debug_sessions_rejected_total",
		"Session opens refused, by reason.", "reason")
	mRejectCap     = sessionRejects.With("cap")
	mRejectWindow  = sessionRejects.With("window")
	mRejectUnknown = sessionRejects.With("unknown_report")
	mRejectErr     = sessionRejects.With("error")

	cmdSeconds = obs.Default.HistogramVec("bugnet_debug_command_seconds",
		"Debug command latency by verb.", nil, "verb")

	// verbHists preallocates one histogram per known verb so Exec pays a
	// map lookup, not a registry lock; unknown input lands in "other" and
	// the label set stays bounded no matter what clients send.
	verbHists = map[string]*obs.Histogram{
		"step":      cmdSeconds.With("step"),
		"rstep":     cmdSeconds.With("rstep"),
		"cont":      cmdSeconds.With("cont"),
		"continue":  cmdSeconds.With("cont"),
		"rcont":     cmdSeconds.With("rcont"),
		"seek":      cmdSeconds.With("seek"),
		"runto":     cmdSeconds.With("runto"),
		"break":     cmdSeconds.With("break"),
		"delete":    cmdSeconds.With("delete"),
		"watch":     cmdSeconds.With("watch"),
		"unwatch":   cmdSeconds.With("unwatch"),
		"regs":      cmdSeconds.With("regs"),
		"mem":       cmdSeconds.With("mem"),
		"backtrace": cmdSeconds.With("backtrace"),
		"where":     cmdSeconds.With("where"),
	}
	otherVerbHist = cmdSeconds.With("other")
)

func observeCommand(verb string, start time.Time) {
	h := verbHists[verb]
	if h == nil {
		h = otherVerbHist
	}
	h.Since(start)
}

// registerOccupancy publishes the manager's aggregate checkpoint-byte
// footprint as a scrape-time gauge. Sessions mid-command are skipped
// (TryLock) so a scrape never waits behind a reverse-continue.
func (m *Manager) registerOccupancy() {
	obs.Default.GaugeFunc("bugnet_debug_checkpoint_bytes",
		"Checkpoint bytes held by open debug sessions (busy sessions excluded).",
		func() float64 {
			m.mu.Lock()
			sessions := make([]*Session, 0, len(m.sessions))
			for _, s := range m.sessions {
				sessions = append(sessions, s)
			}
			m.mu.Unlock()
			var total int64
			for _, s := range sessions {
				if !s.mu.TryLock() {
					continue
				}
				if !s.closed {
					_, bytes := s.eng.Checkpoints()
					total += bytes
				}
				s.mu.Unlock()
			}
			return float64(total)
		})
}
