package timetravel

// BytesFromWords lays a byte-granular view over the word-granular result
// of a mem command: it extracts the little-endian bytes [addr, addr+n)
// from words, which must cover the word-aligned span of that range (as a
// mem command over the covering words returns). Each byte carries its own
// §7.1 known flag; bytes whose word is absent from words — or recorded
// unknown — report known=false with a zero value, never an invented one.
// The RSP stub renders those as the "xx" unavailable marker.
func BytesFromWords(words []Word, addr uint32, n int) (data []byte, known []bool) {
	byWord := make(map[uint32]Word, len(words))
	for _, w := range words {
		byWord[w.Addr] = w
	}
	data = make([]byte, n)
	known = make([]bool, n)
	for i := 0; i < n; i++ {
		a := addr + uint32(i)
		w, ok := byWord[a&^3]
		if !ok || !w.Known {
			continue
		}
		data[i] = byte(w.Value >> (8 * (a & 3)))
		known[i] = true
	}
	return data, known
}
