package timetravel

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bugnet/internal/asm"
	"bugnet/internal/core"
)

// ReportSource hands the session layer decoded crash reports. The triage
// service implements it: OpenReport pins the stored blob against store
// eviction for as long as the session is open, and release drops the pin.
type ReportSource interface {
	// OpenReport decodes the stored report and resolves its binary.
	// release must be safe to call more than once. Unknown ids return an
	// error wrapping ErrUnknownReport.
	OpenReport(id string) (rep *core.CrashReport, img *asm.Image, release func(), err error)
}

// ErrUnknownReport marks an OpenReport failure caused by the id, not the
// server — the HTTP layer maps it to 404.
var ErrUnknownReport = errors.New("timetravel: unknown report")

// ErrSessionLimit reports that the concurrent-session cap is reached.
var ErrSessionLimit = errors.New("timetravel: session limit reached")

// ErrClosed reports an operation on a closed manager.
var ErrClosed = errors.New("timetravel: manager closed")

// ManagerConfig parameterizes a session manager.
type ManagerConfig struct {
	// MaxSessions caps concurrently open sessions; each one holds a replay
	// image and a checkpoint set in memory, so the cap is a memory budget
	// as much as a fairness one. Default 8.
	MaxSessions int
	// IdleTimeout closes sessions with no commands for this long, dropping
	// their store pins. Default 10 minutes.
	IdleTimeout time.Duration
	// MaxWindow refuses sessions over reports whose claimed replay window
	// exceeds this many instructions — window lengths are
	// attacker-controlled, and an interactive continue over an unbounded
	// window would pin a server thread. Default 100M.
	MaxWindow uint64
	// Engine configures each session's engine (checkpoint spacing, byte
	// budget, page budget).
	Engine Config
}

func (c *ManagerConfig) fillDefaults() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Minute
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 100_000_000
	}
}

// Session is one interactive time-travel debug session over a stored
// report. Commands are serialized per session; distinct sessions run
// concurrently.
type Session struct {
	ID       string
	ReportID string
	TID      int

	mgr      *Manager
	mu       sync.Mutex
	eng      *Engine
	release  func()
	closed   bool
	lastUsed atomic.Int64 // unix nanos of the last completed command
}

// Do executes one command against the session's engine. lastUsed is
// stamped on entry as well as completion, and while the command holds the
// session mutex the sweep's TryLock treats the session as busy — so a
// long-running command (a reverse-continue over a big window) can never
// be idle-reaped mid-flight.
func (s *Session) Do(c Command) Outcome {
	s.lastUsed.Store(s.mgr.now().UnixNano())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Outcome{Error: "session closed"}
	}
	out := s.eng.Exec(c)
	s.lastUsed.Store(s.mgr.now().UnixNano())
	return out
}

// close releases the engine and the report pin. Idempotent.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.eng = nil
	if s.release != nil {
		s.release()
	}
}

// SessionInfo is the externally visible session state.
type SessionInfo struct {
	ID          string  `json:"id"`
	Report      string  `json:"report"`
	TID         int     `json:"tid"`
	Window      uint64  `json:"window"`
	Pos         uint64  `json:"pos"`
	Checkpoints int     `json:"checkpoints"`
	CkptBytes   int64   `json:"checkpoint_bytes"`
	IdleSec     float64 `json:"idle_seconds"`
	// Busy marks a session observed mid-command; the engine-derived
	// fields (Window, Pos, ...) are omitted rather than waiting on it.
	Busy  bool       `json:"busy,omitempty"`
	Fault *FaultDesc `json:"fault,omitempty"`
}

// Manager owns the live debug sessions: creation from stored reports,
// lookup, the concurrent-session cap, and idle expiry (a janitor sweeps in
// the background; every API call sweeps too, so expiry does not depend on
// the janitor's granularity).
type Manager struct {
	src ReportSource
	cfg ManagerConfig

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool
	stop     chan struct{}

	now func() time.Time // test seam
}

// NewManager starts a session manager over src.
func NewManager(src ReportSource, cfg ManagerConfig) *Manager {
	cfg.fillDefaults()
	m := &Manager{
		src:      src,
		cfg:      cfg,
		sessions: make(map[string]*Session),
		stop:     make(chan struct{}),
		now:      time.Now,
	}
	m.registerOccupancy()
	go m.janitor()
	return m
}

// janitor expires idle sessions even when no requests arrive.
func (m *Manager) janitor() {
	tick := m.cfg.IdleTimeout / 4
	if tick < time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// Sweep closes sessions idle past the timeout and returns how many it
// reaped. A session whose command is still executing is never reaped,
// however long it runs: the non-blocking TryLock fails while Do holds the
// session mutex, so the sweep (and the HTTP handler that triggered it)
// neither blocks on it nor tears it down mid-command.
func (m *Manager) Sweep() int {
	cutoff := m.now().Add(-m.cfg.IdleTimeout).UnixNano()
	m.mu.Lock()
	var candidates []*Session
	for _, s := range m.sessions {
		if s.lastUsed.Load() < cutoff {
			candidates = append(candidates, s)
		}
	}
	m.mu.Unlock()
	reaped := 0
	for _, s := range candidates {
		if !s.mu.TryLock() {
			continue // mid-command: busy, not idle
		}
		if !s.closed && s.lastUsed.Load() < cutoff {
			s.closed = true
			s.eng = nil
			if s.release != nil {
				s.release()
			}
			m.mu.Lock()
			delete(m.sessions, s.ID)
			m.mu.Unlock()
			mSessionsOpen.Dec()
			mSessionsReaped.Inc()
			reaped++
		}
		s.mu.Unlock()
	}
	return reaped
}

// Open creates a session over a stored report. tid < 0 selects the
// crashing thread. The returned session is already registered and counts
// against the cap.
func (m *Manager) Open(reportID string, tid int) (*Session, error) {
	m.Sweep()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		mRejectCap.Inc()
		return nil, fmt.Errorf("%w (%d open)", ErrSessionLimit, m.cfg.MaxSessions)
	}
	m.mu.Unlock()

	rep, img, release, err := m.src.OpenReport(reportID)
	if err != nil {
		if errors.Is(err, ErrUnknownReport) {
			mRejectUnknown.Inc()
		} else {
			mRejectErr.Inc()
		}
		return nil, err
	}
	var window uint64
	for _, logs := range rep.FLLs {
		for _, l := range logs {
			if l.Length > m.cfg.MaxWindow-window {
				release()
				mRejectWindow.Inc()
				return nil, fmt.Errorf("timetravel: claimed replay window exceeds the %d-instruction budget", m.cfg.MaxWindow)
			}
			window += l.Length
		}
	}
	eng, tid, err := NewEngineForThread(img, rep, tid, m.cfg.Engine)
	if err != nil {
		release()
		mRejectErr.Inc()
		return nil, err
	}

	id, err := newSessionID()
	if err != nil {
		release()
		mRejectErr.Inc()
		return nil, err
	}
	s := &Session{ID: id, ReportID: reportID, TID: tid, mgr: m, eng: eng, release: release}
	s.lastUsed.Store(m.now().UnixNano())

	m.mu.Lock()
	if m.closed || len(m.sessions) >= m.cfg.MaxSessions {
		// Re-check: the engine build above ran unlocked.
		closed := m.closed
		m.mu.Unlock()
		s.close()
		if closed {
			mRejectErr.Inc()
			return nil, ErrClosed
		}
		mRejectCap.Inc()
		return nil, fmt.Errorf("%w (%d open)", ErrSessionLimit, m.cfg.MaxSessions)
	}
	m.sessions[id] = s
	m.mu.Unlock()
	mSessionsOpen.Inc()
	mSessionsOpened.Inc()
	return s, nil
}

// Get returns a live session by id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.Sweep()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// CloseSession closes one session, reporting whether it existed.
func (m *Manager) CloseSession(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if ok {
		mSessionsOpen.Dec()
		s.close()
	}
	return ok
}

// List describes the live sessions, sorted by id.
func (m *Manager) List() []SessionInfo {
	m.Sweep()
	now := m.now()
	m.mu.Lock()
	out := make([]SessionInfo, 0, len(m.sessions))
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		if info, ok := s.info(now); ok {
			out = append(out, info)
		}
	}
	sortInfos(out)
	return out
}

// info snapshots one session's state; ok is false if it closed meanwhile.
// A session mid-command reports Busy with its engine fields omitted
// rather than blocking the caller behind the running command.
func (s *Session) info(now time.Time) (SessionInfo, bool) {
	base := SessionInfo{
		ID:      s.ID,
		Report:  s.ReportID,
		TID:     s.TID,
		IdleSec: now.Sub(time.Unix(0, s.lastUsed.Load())).Seconds(),
	}
	if !s.mu.TryLock() {
		base.Busy = true
		return base, true
	}
	defer s.mu.Unlock()
	if s.closed {
		return SessionInfo{}, false
	}
	base.Window = s.eng.Window()
	base.Pos = s.eng.Pos()
	base.Checkpoints, base.CkptBytes = s.eng.Checkpoints()
	base.Fault = s.eng.faultDesc()
	return base, true
}

// Info describes one session.
func (m *Manager) Info(id string) (SessionInfo, bool) {
	s, ok := m.Get(id)
	if !ok {
		return SessionInfo{}, false
	}
	return s.info(m.now())
}

// Count returns the number of live sessions.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Capacity returns the live session count and the cap — the readiness
// signal: a manager at capacity rejects every Open until something
// closes or ages out.
func (m *Manager) Capacity() (open, max int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions), m.cfg.MaxSessions
}

// Close shuts the manager down, closing every session and stopping the
// janitor.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.stop)
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	mSessionsOpen.Add(-int64(len(sessions)))
	for _, s := range sessions {
		s.close()
	}
}

func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("timetravel: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func sortInfos(infos []SessionInfo) {
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
}
