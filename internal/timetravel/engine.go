// Package timetravel is the interactive time-travel debugging subsystem:
// checkpointed reverse execution over a recorded replay window, plus the
// session layer that exposes it to remote developers over HTTP.
//
// The paper's whole point is developer-side deterministic replay debugging
// (§1, §5), but naive "back in time" is re-execution from the window start
// — O(window) per reverse step. This package wraps core.ReplayMachine with
// periodic full-state checkpoints (CPU snapshot, known-memory bitmap, log
// cursors, backtrace ring — captured copy-on-write, so taking one costs
// O(page-table directory), not a deep copy) taken every CheckpointEvery
// instructions under a byte budget, so any backward motion becomes
// "restore the nearest
// checkpoint + bounded forward re-execution": ReverseStep, ReverseContinue
// and SeekTo all cost O(CheckpointEvery), independent of how long the
// recorded window is. Data watchpoints honor the paper's §7.1
// unknown-memory semantics: a watch fires when the watched word's *known*
// value changes — a replayed store rewriting it, or a logged first-load
// injection making it known in the first place.
package timetravel

import (
	"fmt"
	"sort"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/dict"
	"bugnet/internal/fll"
)

// Config parameterizes an Engine.
type Config struct {
	// CheckpointEvery is the checkpoint interval K in replayed
	// instructions; reverse motion costs at most one checkpoint restore
	// plus K forward steps. Default 10_000.
	CheckpointEvery uint64
	// CheckpointBudget bounds the bytes retained across all checkpoints.
	// When exceeded, the checkpoint whose removal creates the smallest
	// coverage gap is evicted (never the window-start anchor, never the
	// newest), so dense recent history thins toward sparse old history and
	// the reverse-step bound degrades gracefully to the widest surviving
	// gap. Checkpoints are copy-on-write (see core.ReplaySnapshot): each
	// is budgeted at its conservative unshared size, while its real cost
	// is the pages the replay dirties between neighboring checkpoints, so
	// the budget is an upper bound, not an exact occupancy. Default 64 MB.
	CheckpointBudget int64
	// TraceDepth is the backtrace ring length carried through replay and
	// checkpoints. Default 16.
	TraceDepth int
	// MaxPages caps replay memory in 4 KB pages (see
	// core.Replayer.MaxPages); sessions over untrusted stored reports set
	// it. 0 = unlimited.
	MaxPages int
	// LogCodeLoads and DictOptions must match the recording configuration
	// (CrashReport carries them).
	LogCodeLoads bool
	DictOptions  dict.Options
}

func (c *Config) fillDefaults() {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10_000
	}
	if c.CheckpointBudget == 0 {
		c.CheckpointBudget = 64 << 20
	}
	if c.TraceDepth == 0 {
		c.TraceDepth = 16
	}
}

// StopReason tells why the engine returned control.
type StopReason uint8

// Stop reasons.
const (
	StopStep  StopReason = iota // requested step count exhausted
	StopBreak                   // hit a breakpoint
	StopWatch                   // a watched word's known value changed
	StopEnd                     // reached the end of the recorded window
	StopStart                   // reached the start of the window (reverse)
)

func (s StopReason) String() string {
	switch s {
	case StopStep:
		return "step"
	case StopBreak:
		return "breakpoint"
	case StopWatch:
		return "watchpoint"
	case StopEnd:
		return "end-of-window"
	case StopStart:
		return "start-of-window"
	}
	return "unknown"
}

// WatchHit describes the transition that fired a watchpoint. Known=false
// values are the §7.1 "untouched, value unavailable" state.
type WatchHit struct {
	Addr     uint32 `json:"addr"`
	OldKnown bool   `json:"old_known"`
	Old      uint32 `json:"old"`
	NewKnown bool   `json:"new_known"`
	New      uint32 `json:"new"`
}

// watchVal is a watched word's last observed state.
type watchVal struct {
	known bool
	val   uint32
}

// checkpoint is one restore point.
type checkpoint struct {
	pos  uint64
	snap *core.ReplaySnapshot
}

// Engine is a time-travel debugger over one thread's retained logs:
// forward and reverse stepping, breakpoints, data watchpoints, absolute
// seeks, register/memory inspection and a rolling backtrace. Like the
// paper's debugger (§4.6: "any thread can be replayed independent of the
// other threads"), it replays one thread; cross-thread ordering stays the
// multithreaded replayer's job.
//
// Engine is not safe for concurrent use; Session serializes access.
type Engine struct {
	img *asm.Image
	cfg Config
	m   *core.ReplayMachine

	ckpts      []*checkpoint // ascending by pos; ckpts[0] is the pos-0 anchor
	ckptBytes  int64
	nextCkptAt uint64

	breaks     map[uint32]bool
	watchAddrs []uint32 // sorted word addresses, for deterministic reporting
	watchVals  map[uint32]watchVal
	lastWatch  *WatchHit
}

// NewEngine opens one thread's logs for time-travel debugging.
func NewEngine(img *asm.Image, logs []*fll.Ref, cfg Config) (*Engine, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("timetravel: engine needs at least one log")
	}
	cfg.fillDefaults()
	r := core.NewReplayer(img, logs)
	r.LogCodeLoads = cfg.LogCodeLoads
	r.DictOptions = cfg.DictOptions
	r.MaxPages = cfg.MaxPages
	r.TraceDepth = cfg.TraceDepth
	e := &Engine{
		img:       img,
		cfg:       cfg,
		m:         r.Machine(core.MachineOptions{TrackKnown: true}),
		breaks:    make(map[uint32]bool),
		watchVals: make(map[uint32]watchVal),
	}
	// The window-start anchor: every backward seek has somewhere to land.
	e.ckpts = append(e.ckpts, &checkpoint{pos: 0, snap: e.m.Snapshot()})
	e.ckptBytes = e.ckpts[0].snap.SizeBytes()
	e.nextCkptAt = cfg.CheckpointEvery
	return e, nil
}

// NewEngineForThread opens one thread of a crash report, adopting the
// recording options the report carries. tid < 0 selects the crashing
// thread (thread 0 if the report records a clean stop).
func NewEngineForThread(img *asm.Image, rep *core.CrashReport, tid int, cfg Config) (*Engine, int, error) {
	if tid < 0 {
		tid = 0
		if rep.Crash != nil {
			tid = rep.Crash.TID
		}
	}
	logs := rep.FLLs[tid]
	if len(logs) == 0 {
		return nil, tid, fmt.Errorf("timetravel: report has no logs for thread %d", tid)
	}
	cfg.LogCodeLoads = rep.LogCodeLoads
	cfg.DictOptions = rep.DictOptions
	e, err := NewEngine(img, logs, cfg)
	return e, tid, err
}

// Window returns the total instructions the retained logs cover.
func (e *Engine) Window() uint64 { return e.m.Window() }

// Pos returns the current instruction position.
func (e *Engine) Pos() uint64 { return e.m.Pos() }

// Done reports whether the window is exhausted.
func (e *Engine) Done() bool { return e.m.Done() }

// PC returns the current program counter.
func (e *Engine) PC() uint32 { return e.m.PC() }

// Registers returns the current architectural state.
func (e *Engine) Registers() cpu.Snapshot { return e.m.Registers() }

// Fault returns the crash record of the final log, if any.
func (e *Engine) Fault() *fll.FaultRecord { return e.m.Fault() }

// ReadWord inspects replayed memory under §7.1 semantics.
func (e *Engine) ReadWord(addr uint32) (value uint32, known bool) { return e.m.ReadWord(addr) }

// Backtrace returns the trail of the last TraceDepth fetched instructions
// at the current position, oldest first.
func (e *Engine) Backtrace() []core.TraceEntry { return e.m.Trace() }

// SymbolAt renders pc as symbol+offset.
func (e *Engine) SymbolAt(pc uint32) string { return core.SymbolAt(e.img, pc) }

// Disasm renders the instruction at pc.
func (e *Engine) Disasm(pc uint32) string { return e.img.DisassembleAt(pc) }

// Image returns the binary the engine replays.
func (e *Engine) Image() *asm.Image { return e.img }

// LastWatch returns the transition behind the most recent StopWatch.
func (e *Engine) LastWatch() *WatchHit { return e.lastWatch }

// AddBreak sets a breakpoint at pc.
func (e *Engine) AddBreak(pc uint32) { e.breaks[pc] = true }

// ClearBreak removes a breakpoint.
func (e *Engine) ClearBreak(pc uint32) { delete(e.breaks, pc) }

// Breakpoints returns the breakpoint set in ascending order.
func (e *Engine) Breakpoints() []uint32 {
	out := make([]uint32, 0, len(e.breaks))
	for pc := range e.breaks {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddWatch sets a data watchpoint on the word containing addr, primed with
// the word's current known state.
func (e *Engine) AddWatch(addr uint32) {
	w := addr &^ 3
	if _, ok := e.watchVals[w]; ok {
		return
	}
	v, known := e.m.ReadWord(w)
	e.watchVals[w] = watchVal{known: known, val: v}
	e.watchAddrs = append(e.watchAddrs, w)
	sort.Slice(e.watchAddrs, func(i, j int) bool { return e.watchAddrs[i] < e.watchAddrs[j] })
}

// ClearWatch removes the watchpoint on addr's word.
func (e *Engine) ClearWatch(addr uint32) {
	w := addr &^ 3
	if _, ok := e.watchVals[w]; !ok {
		return
	}
	delete(e.watchVals, w)
	for i, a := range e.watchAddrs {
		if a == w {
			e.watchAddrs = append(e.watchAddrs[:i], e.watchAddrs[i+1:]...)
			break
		}
	}
}

// Watches returns the watched word addresses in ascending order.
func (e *Engine) Watches() []uint32 {
	return append([]uint32(nil), e.watchAddrs...)
}

// Checkpoints reports the live checkpoint count and their byte footprint.
func (e *Engine) Checkpoints() (count int, bytes int64) {
	return len(e.ckpts), e.ckptBytes
}

// primeWatches re-reads every watched word, so motion that is navigation
// (seeks, restores) rather than execution never fires a watchpoint.
func (e *Engine) primeWatches() {
	for _, a := range e.watchAddrs {
		v, known := e.m.ReadWord(a)
		e.watchVals[a] = watchVal{known: known, val: v}
	}
}

// checkWatches scans the watched words (in address order) for a change
// since the last observation, updating the stored state either way.
func (e *Engine) checkWatches() *WatchHit {
	var hit *WatchHit
	for _, a := range e.watchAddrs {
		v, known := e.m.ReadWord(a)
		prev := e.watchVals[a]
		if known != prev.known || v != prev.val {
			e.watchVals[a] = watchVal{known: known, val: v}
			if hit == nil {
				hit = &WatchHit{Addr: a, OldKnown: prev.known, Old: prev.val, NewKnown: known, New: v}
			}
		}
	}
	return hit
}

// ckptIndexAtOrBefore returns the index of the latest checkpoint with
// pos <= target. The pos-0 anchor guarantees one exists.
func (e *Engine) ckptIndexAtOrBefore(target uint64) int {
	i := sort.Search(len(e.ckpts), func(i int) bool { return e.ckpts[i].pos > target })
	return i - 1
}

// maybeCheckpoint takes a checkpoint when the machine crosses the next
// scheduled position, then enforces the byte budget. Restores re-align
// nextCkptAt, so checkpoint positions stay on the K grid and re-executed
// stretches find their old checkpoints instead of duplicating them.
func (e *Engine) maybeCheckpoint() {
	pos := e.m.Pos()
	if pos < e.nextCkptAt {
		return
	}
	e.nextCkptAt = pos + e.cfg.CheckpointEvery
	i := e.ckptIndexAtOrBefore(pos)
	if e.ckpts[i].pos == pos {
		return // already have one here (re-execution after a restore)
	}
	c := &checkpoint{pos: pos, snap: e.m.Snapshot()}
	e.ckpts = append(e.ckpts, nil)
	copy(e.ckpts[i+2:], e.ckpts[i+1:])
	e.ckpts[i+1] = c
	e.ckptBytes += c.snap.SizeBytes()
	e.evict()
}

// evict thins checkpoints until the byte budget is met: repeatedly drop
// the interior checkpoint whose removal creates the smallest gap, sparing
// the pos-0 anchor and the newest. Old dense history decays toward
// exponential spacing; the reverse-step bound becomes the widest gap.
func (e *Engine) evict() {
	for e.ckptBytes > e.cfg.CheckpointBudget && len(e.ckpts) > 2 {
		best, bestGap := -1, uint64(0)
		for i := 1; i < len(e.ckpts)-1; i++ {
			gap := e.ckpts[i+1].pos - e.ckpts[i-1].pos
			if best == -1 || gap < bestGap {
				best, bestGap = i, gap
			}
		}
		e.ckptBytes -= e.ckpts[best].snap.SizeBytes()
		e.ckpts = append(e.ckpts[:best], e.ckpts[best+1:]...)
	}
}

// forwardOne executes one instruction and handles checkpointing.
func (e *Engine) forwardOne() error {
	if err := e.m.StepOne(); err != nil {
		return err
	}
	e.maybeCheckpoint()
	return nil
}

// forwardTo batch-executes to the target position through the block
// engine, pausing only on the checkpoint grid. Callers must have
// established that no per-instruction stop checks are needed over the
// stretch (no breakpoints or watchpoints, or a seek where they do not
// fire).
func (e *Engine) forwardTo(target uint64) error {
	for e.m.Pos() < target && !e.m.Done() {
		stop := target
		if e.nextCkptAt < stop {
			stop = e.nextCkptAt
		}
		n := stop - e.m.Pos()
		if n == 0 {
			n = 1 // defensive: always make progress
		}
		if _, err := e.m.StepN(n); err != nil {
			return err
		}
		e.maybeCheckpoint()
	}
	return nil
}

// Step executes up to n instructions, stopping early at a breakpoint, a
// watchpoint change, or the end of the window. With no breakpoints or
// watchpoints set there is nothing to police per instruction, so the walk
// runs batched through the block engine.
func (e *Engine) Step(n uint64) (StopReason, error) {
	if len(e.breaks) == 0 && len(e.watchAddrs) == 0 {
		if e.m.Done() {
			return StopEnd, nil
		}
		target := e.m.Window()
		if left := target - e.m.Pos(); n < left {
			target = e.m.Pos() + n
		}
		if err := e.forwardTo(target); err != nil {
			return StopEnd, err
		}
		if e.m.Done() {
			return StopEnd, nil
		}
		return StopStep, nil
	}
	for i := uint64(0); i < n; i++ {
		if e.m.Done() {
			return StopEnd, nil
		}
		if err := e.forwardOne(); err != nil {
			return StopEnd, err
		}
		if hit := e.checkWatches(); hit != nil {
			e.lastWatch = hit
			return StopWatch, nil
		}
		// Breakpoint before end-of-window, as in core.Debugger: the final
		// PC is the faulting instruction and a breakpoint there must hit.
		if e.breaks[e.m.PC()] {
			return StopBreak, nil
		}
		if e.m.Done() {
			return StopEnd, nil
		}
	}
	return StopStep, nil
}

// Continue runs forward until a breakpoint, watchpoint, or the end of the
// window (where the faulting instruction, if any, is next).
func (e *Engine) Continue() (StopReason, error) {
	return e.Step(^uint64(0)) // the window is far shorter than 2^64
}

// SeekTo travels to an absolute position: it restores the nearest
// checkpoint at or before the target whenever that lands closer than the
// current position — backward always, forward when a checkpoint lets the
// seek skip ahead — then re-executes to the target, so on a warmed window
// the cost is bounded by the checkpoint spacing, not the distance.
// Breakpoints and watchpoints do not fire during a seek.
func (e *Engine) SeekTo(target uint64) error {
	if target > e.m.Window() {
		target = e.m.Window()
	}
	if c := e.ckpts[e.ckptIndexAtOrBefore(target)]; target < e.m.Pos() || c.pos > e.m.Pos() {
		e.m.Restore(c.snap)
		e.nextCkptAt = c.pos + e.cfg.CheckpointEvery
	}
	// Breakpoints and watchpoints never fire during a seek, so the
	// re-execution runs batched through the block engine.
	if err := e.forwardTo(target); err != nil {
		return err
	}
	e.primeWatches()
	return nil
}

// ReverseStep travels n instructions backward. It reports StopStart when
// the request was clamped at the window start.
func (e *Engine) ReverseStep(n uint64) (StopReason, error) {
	pos := e.m.Pos()
	if n >= pos {
		if err := e.SeekTo(0); err != nil {
			return StopStart, err
		}
		if n > pos {
			return StopStart, nil
		}
		return StopStep, nil
	}
	if err := e.SeekTo(pos - n); err != nil {
		return StopStep, err
	}
	return StopStep, nil
}

// ReverseContinue runs backward to the most recent earlier position where
// a breakpoint or watchpoint would stop execution, or to the window start.
//
// A breakpoint stop is a position p < Pos whose PC is a breakpoint. A
// watchpoint stop is the position of the instruction that changed the
// watched word — reverse lands *before* the mutator commits, so the
// developer inspects the pre-corruption state and the culprit's PC, while
// forward execution stops just after the change (conventional debugger
// asymmetry).
//
// The scan walks checkpoint gaps newest-first: restore the previous
// checkpoint, re-execute forward to the scan limit recording the last
// stop, and only widen backward when a gap contains none — so the common
// "the write was recent" case costs one gap, and the worst case is one
// pass over the window.
func (e *Engine) ReverseContinue() (StopReason, error) {
	if len(e.breaks) == 0 && len(e.watchAddrs) == 0 {
		// Nothing can stop a reverse scan; land on the window start
		// without re-executing every gap per-instruction.
		if err := e.SeekTo(0); err != nil {
			return StopStart, err
		}
		return StopStart, nil
	}
	limit := e.m.Pos()
	for {
		i := e.ckptIndexAtOrBefore(limit)
		c := e.ckpts[i]
		if c.pos == limit && limit > 0 {
			// The checkpoint sits exactly at the scan limit; the gap to
			// scan is the one before it.
			c = e.ckpts[i-1]
		}
		e.m.Restore(c.snap)
		e.nextCkptAt = c.pos + e.cfg.CheckpointEvery
		e.primeWatches()

		hitPos, hitReason := int64(-1), StopStep
		var hitWatch *WatchHit
		if e.breaks[e.m.PC()] && e.m.Pos() < limit {
			hitPos, hitReason = int64(e.m.Pos()), StopBreak
		}
		for e.m.Pos() < limit && !e.m.Done() {
			p := e.m.Pos()
			if err := e.forwardOne(); err != nil {
				return StopStep, err
			}
			if hit := e.checkWatches(); hit != nil {
				// The instruction at p is the mutator.
				hitPos, hitReason, hitWatch = int64(p), StopWatch, hit
			}
			if e.m.Pos() < limit && e.breaks[e.m.PC()] {
				hitPos, hitReason, hitWatch = int64(e.m.Pos()), StopBreak, nil
			}
		}
		if hitPos >= 0 {
			if err := e.SeekTo(uint64(hitPos)); err != nil {
				return hitReason, err
			}
			e.lastWatch = hitWatch
			return hitReason, nil
		}
		if c.pos == 0 {
			if err := e.SeekTo(0); err != nil {
				return StopStart, err
			}
			return StopStart, nil
		}
		limit = c.pos
	}
}
