// Package timetravel is the interactive time-travel debugging subsystem:
// checkpointed reverse execution over a recorded replay window, plus the
// session layer that exposes it to remote developers over HTTP.
//
// The paper's whole point is developer-side deterministic replay debugging
// (§1, §5), but naive "back in time" is re-execution from the window start
// — O(window) per reverse step. This package wraps core.ReplayMachine with
// periodic full-state checkpoints (CPU snapshot, known-memory bitmap, log
// cursors, backtrace ring — captured copy-on-write, so taking one costs
// O(page-table directory), not a deep copy) taken every CheckpointEvery
// instructions under a byte budget, so any backward motion becomes
// "restore the nearest
// checkpoint + bounded forward re-execution": ReverseStep, ReverseContinue
// and SeekTo all cost O(CheckpointEvery), independent of how long the
// recorded window is. Data watchpoints honor the paper's §7.1
// unknown-memory semantics: a watch fires when the watched word's *known*
// value changes — a replayed store rewriting it, or a logged first-load
// injection making it known in the first place.
package timetravel

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/dict"
	"bugnet/internal/fll"
)

// Config parameterizes an Engine.
type Config struct {
	// CheckpointEvery is the checkpoint interval K in replayed
	// instructions; reverse motion costs at most one checkpoint restore
	// plus K forward steps. Default 10_000.
	CheckpointEvery uint64
	// CheckpointBudget bounds the bytes retained across all checkpoints.
	// When exceeded, the checkpoint whose removal creates the smallest
	// coverage gap is evicted (never the window-start anchor, never the
	// newest), so dense recent history thins toward sparse old history and
	// the reverse-step bound degrades gracefully to the widest surviving
	// gap. Checkpoints are copy-on-write (see core.ReplaySnapshot): each
	// is budgeted at its conservative unshared size, while its real cost
	// is the pages the replay dirties between neighboring checkpoints, so
	// the budget is an upper bound, not an exact occupancy. Default 64 MB.
	CheckpointBudget int64
	// TraceDepth is the backtrace ring length carried through replay and
	// checkpoints. Default 16.
	TraceDepth int
	// MaxPages caps replay memory in 4 KB pages (see
	// core.Replayer.MaxPages); sessions over untrusted stored reports set
	// it. 0 = unlimited.
	MaxPages int
	// LogCodeLoads and DictOptions must match the recording configuration
	// (CrashReport carries them).
	LogCodeLoads bool
	DictOptions  dict.Options
	// ScanParallelism is the number of checkpoint gaps ReverseContinue
	// scans speculatively in parallel: instead of widening one gap at a
	// time, it restores up to this many gap-start checkpoints into private
	// scan machines and re-executes them concurrently, newest-first, with
	// older gaps cancelled as soon as a newer gap records a stop. The stop
	// position, reason, and watch transition are identical to the
	// sequential walk. <= 1 keeps the sequential scan.
	ScanParallelism int
}

func (c *Config) fillDefaults() {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10_000
	}
	if c.CheckpointBudget == 0 {
		c.CheckpointBudget = 64 << 20
	}
	if c.TraceDepth == 0 {
		c.TraceDepth = 16
	}
}

// StopReason tells why the engine returned control.
type StopReason uint8

// Stop reasons.
const (
	StopStep  StopReason = iota // requested step count exhausted
	StopBreak                   // hit a breakpoint
	StopWatch                   // a watched word's known value changed
	StopEnd                     // reached the end of the recorded window
	StopStart                   // reached the start of the window (reverse)
)

func (s StopReason) String() string {
	switch s {
	case StopStep:
		return "step"
	case StopBreak:
		return "breakpoint"
	case StopWatch:
		return "watchpoint"
	case StopEnd:
		return "end-of-window"
	case StopStart:
		return "start-of-window"
	}
	return "unknown"
}

// WatchHit describes the transition that fired a watchpoint. Known=false
// values are the §7.1 "untouched, value unavailable" state.
type WatchHit struct {
	Addr     uint32 `json:"addr"`
	OldKnown bool   `json:"old_known"`
	Old      uint32 `json:"old"`
	NewKnown bool   `json:"new_known"`
	New      uint32 `json:"new"`
}

// watchVal is a watched word's last observed state.
type watchVal struct {
	known bool
	val   uint32
}

// checkpoint is one restore point.
type checkpoint struct {
	pos  uint64
	snap *core.ReplaySnapshot
}

// Engine is a time-travel debugger over one thread's retained logs:
// forward and reverse stepping, breakpoints, data watchpoints, absolute
// seeks, register/memory inspection and a rolling backtrace. Like the
// paper's debugger (§4.6: "any thread can be replayed independent of the
// other threads"), it replays one thread; cross-thread ordering stays the
// multithreaded replayer's job.
//
// Engine is not safe for concurrent use; Session serializes access.
type Engine struct {
	img  *asm.Image
	cfg  Config
	logs []*fll.Ref
	m    *core.ReplayMachine

	ckpts      []*checkpoint // ascending by pos; ckpts[0] is the pos-0 anchor
	ckptBytes  int64
	nextCkptAt uint64

	breaks     map[uint32]bool
	watchAddrs []uint32 // sorted word addresses, for deterministic reporting
	watchVals  map[uint32]watchVal
	lastWatch  *WatchHit

	// scanners are the private replay machines the parallel reverse scan
	// restores gap-start checkpoints into, minted lazily and reused across
	// ReverseContinue calls. Only the gap scan runs on them concurrently;
	// snapshot restores stay serialized on the engine's goroutine.
	scanners []*core.ReplayMachine
}

// NewEngine opens one thread's logs for time-travel debugging.
func NewEngine(img *asm.Image, logs []*fll.Ref, cfg Config) (*Engine, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("timetravel: engine needs at least one log")
	}
	cfg.fillDefaults()
	r := core.NewReplayer(img, logs)
	r.LogCodeLoads = cfg.LogCodeLoads
	r.DictOptions = cfg.DictOptions
	r.MaxPages = cfg.MaxPages
	r.TraceDepth = cfg.TraceDepth
	e := &Engine{
		img:       img,
		cfg:       cfg,
		logs:      logs,
		m:         r.Machine(core.MachineOptions{TrackKnown: true}),
		breaks:    make(map[uint32]bool),
		watchVals: make(map[uint32]watchVal),
	}
	// The window-start anchor: every backward seek has somewhere to land.
	e.ckpts = append(e.ckpts, &checkpoint{pos: 0, snap: e.m.Snapshot()})
	e.ckptBytes = e.ckpts[0].snap.SizeBytes()
	e.nextCkptAt = cfg.CheckpointEvery
	return e, nil
}

// NewEngineForThread opens one thread of a crash report, adopting the
// recording options the report carries. tid < 0 selects the crashing
// thread (thread 0 if the report records a clean stop).
func NewEngineForThread(img *asm.Image, rep *core.CrashReport, tid int, cfg Config) (*Engine, int, error) {
	if tid < 0 {
		tid = 0
		if rep.Crash != nil {
			tid = rep.Crash.TID
		}
	}
	logs := rep.FLLs[tid]
	if len(logs) == 0 {
		return nil, tid, fmt.Errorf("timetravel: report has no logs for thread %d", tid)
	}
	cfg.LogCodeLoads = rep.LogCodeLoads
	cfg.DictOptions = rep.DictOptions
	e, err := NewEngine(img, logs, cfg)
	return e, tid, err
}

// Window returns the total instructions the retained logs cover.
func (e *Engine) Window() uint64 { return e.m.Window() }

// Pos returns the current instruction position.
func (e *Engine) Pos() uint64 { return e.m.Pos() }

// Done reports whether the window is exhausted.
func (e *Engine) Done() bool { return e.m.Done() }

// PC returns the current program counter.
func (e *Engine) PC() uint32 { return e.m.PC() }

// Registers returns the current architectural state.
func (e *Engine) Registers() cpu.Snapshot { return e.m.Registers() }

// Fault returns the crash record of the final log, if any.
func (e *Engine) Fault() *fll.FaultRecord { return e.m.Fault() }

// ReadWord inspects replayed memory under §7.1 semantics.
func (e *Engine) ReadWord(addr uint32) (value uint32, known bool) { return e.m.ReadWord(addr) }

// Backtrace returns the trail of the last TraceDepth fetched instructions
// at the current position, oldest first.
func (e *Engine) Backtrace() []core.TraceEntry { return e.m.Trace() }

// SymbolAt renders pc as symbol+offset.
func (e *Engine) SymbolAt(pc uint32) string { return core.SymbolAt(e.img, pc) }

// Disasm renders the instruction at pc.
func (e *Engine) Disasm(pc uint32) string { return e.img.DisassembleAt(pc) }

// Image returns the binary the engine replays.
func (e *Engine) Image() *asm.Image { return e.img }

// LastWatch returns the transition behind the most recent StopWatch.
func (e *Engine) LastWatch() *WatchHit { return e.lastWatch }

// AddBreak sets a breakpoint at pc.
func (e *Engine) AddBreak(pc uint32) { e.breaks[pc] = true }

// ClearBreak removes a breakpoint.
func (e *Engine) ClearBreak(pc uint32) { delete(e.breaks, pc) }

// Breakpoints returns the breakpoint set in ascending order.
func (e *Engine) Breakpoints() []uint32 {
	out := make([]uint32, 0, len(e.breaks))
	for pc := range e.breaks {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddWatch sets a data watchpoint on the word containing addr, primed with
// the word's current known state.
func (e *Engine) AddWatch(addr uint32) {
	w := addr &^ 3
	if _, ok := e.watchVals[w]; ok {
		return
	}
	v, known := e.m.ReadWord(w)
	e.watchVals[w] = watchVal{known: known, val: v}
	e.watchAddrs = append(e.watchAddrs, w)
	sort.Slice(e.watchAddrs, func(i, j int) bool { return e.watchAddrs[i] < e.watchAddrs[j] })
}

// ClearWatch removes the watchpoint on addr's word.
func (e *Engine) ClearWatch(addr uint32) {
	w := addr &^ 3
	if _, ok := e.watchVals[w]; !ok {
		return
	}
	delete(e.watchVals, w)
	for i, a := range e.watchAddrs {
		if a == w {
			e.watchAddrs = append(e.watchAddrs[:i], e.watchAddrs[i+1:]...)
			break
		}
	}
}

// Watches returns the watched word addresses in ascending order.
func (e *Engine) Watches() []uint32 {
	return append([]uint32(nil), e.watchAddrs...)
}

// Checkpoints reports the live checkpoint count and their byte footprint.
func (e *Engine) Checkpoints() (count int, bytes int64) {
	return len(e.ckpts), e.ckptBytes
}

// primeWatchVals (re-)reads every watched word on m into vals, so motion
// that is navigation (seeks, restores) rather than execution never fires a
// watchpoint. The parallel reverse scan calls it with a scan machine and a
// private map; the engine's own machine uses e.watchVals.
func primeWatchVals(m *core.ReplayMachine, addrs []uint32, vals map[uint32]watchVal) {
	for _, a := range addrs {
		v, known := m.ReadWord(a)
		vals[a] = watchVal{known: known, val: v}
	}
}

// checkWatchVals scans the watched words (in address order) for a change
// since the last observation in vals, updating the stored state either way.
func checkWatchVals(m *core.ReplayMachine, addrs []uint32, vals map[uint32]watchVal) *WatchHit {
	var hit *WatchHit
	for _, a := range addrs {
		v, known := m.ReadWord(a)
		prev := vals[a]
		if known != prev.known || v != prev.val {
			vals[a] = watchVal{known: known, val: v}
			if hit == nil {
				hit = &WatchHit{Addr: a, OldKnown: prev.known, Old: prev.val, NewKnown: known, New: v}
			}
		}
	}
	return hit
}

// primeWatches re-primes the engine's watch state from its own machine.
func (e *Engine) primeWatches() {
	primeWatchVals(e.m, e.watchAddrs, e.watchVals)
}

// checkWatches polices the engine's watch state on its own machine.
func (e *Engine) checkWatches() *WatchHit {
	return checkWatchVals(e.m, e.watchAddrs, e.watchVals)
}

// ckptIndexAtOrBefore returns the index of the latest checkpoint with
// pos <= target. The pos-0 anchor guarantees one exists.
func (e *Engine) ckptIndexAtOrBefore(target uint64) int {
	i := sort.Search(len(e.ckpts), func(i int) bool { return e.ckpts[i].pos > target })
	return i - 1
}

// maybeCheckpoint takes a checkpoint when the machine crosses the next
// scheduled position, then enforces the byte budget. Restores re-align
// nextCkptAt, so checkpoint positions stay on the K grid and re-executed
// stretches find their old checkpoints instead of duplicating them.
func (e *Engine) maybeCheckpoint() {
	pos := e.m.Pos()
	if pos < e.nextCkptAt {
		return
	}
	e.nextCkptAt = pos + e.cfg.CheckpointEvery
	i := e.ckptIndexAtOrBefore(pos)
	if e.ckpts[i].pos == pos {
		return // already have one here (re-execution after a restore)
	}
	c := &checkpoint{pos: pos, snap: e.m.Snapshot()}
	e.ckpts = append(e.ckpts, nil)
	copy(e.ckpts[i+2:], e.ckpts[i+1:])
	e.ckpts[i+1] = c
	e.ckptBytes += c.snap.SizeBytes()
	e.evict()
}

// evict thins checkpoints until the byte budget is met: repeatedly drop
// the interior checkpoint whose removal creates the smallest gap, sparing
// the pos-0 anchor and the newest. Old dense history decays toward
// exponential spacing; the reverse-step bound becomes the widest gap.
func (e *Engine) evict() {
	for e.ckptBytes > e.cfg.CheckpointBudget && len(e.ckpts) > 2 {
		best, bestGap := -1, uint64(0)
		for i := 1; i < len(e.ckpts)-1; i++ {
			gap := e.ckpts[i+1].pos - e.ckpts[i-1].pos
			if best == -1 || gap < bestGap {
				best, bestGap = i, gap
			}
		}
		e.ckptBytes -= e.ckpts[best].snap.SizeBytes()
		e.ckpts = append(e.ckpts[:best], e.ckpts[best+1:]...)
	}
}

// forwardOne executes one instruction and handles checkpointing.
func (e *Engine) forwardOne() error {
	if err := e.m.StepOne(); err != nil {
		return err
	}
	e.maybeCheckpoint()
	return nil
}

// forwardTo batch-executes to the target position through the block
// engine, pausing only on the checkpoint grid. Callers must have
// established that no per-instruction stop checks are needed over the
// stretch (no breakpoints or watchpoints, or a seek where they do not
// fire).
func (e *Engine) forwardTo(target uint64) error {
	for e.m.Pos() < target && !e.m.Done() {
		stop := target
		if e.nextCkptAt < stop {
			stop = e.nextCkptAt
		}
		n := stop - e.m.Pos()
		if n == 0 {
			n = 1 // defensive: always make progress
		}
		if _, err := e.m.StepN(n); err != nil {
			return err
		}
		e.maybeCheckpoint()
	}
	return nil
}

// Step executes up to n instructions, stopping early at a breakpoint, a
// watchpoint change, or the end of the window. With no breakpoints or
// watchpoints set there is nothing to police per instruction, so the walk
// runs batched through the block engine.
func (e *Engine) Step(n uint64) (StopReason, error) {
	if len(e.breaks) == 0 && len(e.watchAddrs) == 0 {
		if e.m.Done() {
			return StopEnd, nil
		}
		target := e.m.Window()
		if left := target - e.m.Pos(); n < left {
			target = e.m.Pos() + n
		}
		if err := e.forwardTo(target); err != nil {
			return StopEnd, err
		}
		if e.m.Done() {
			return StopEnd, nil
		}
		return StopStep, nil
	}
	for i := uint64(0); i < n; i++ {
		if e.m.Done() {
			return StopEnd, nil
		}
		if err := e.forwardOne(); err != nil {
			return StopEnd, err
		}
		if hit := e.checkWatches(); hit != nil {
			e.lastWatch = hit
			return StopWatch, nil
		}
		// Breakpoint before end-of-window, as in core.Debugger: the final
		// PC is the faulting instruction and a breakpoint there must hit.
		if e.breaks[e.m.PC()] {
			return StopBreak, nil
		}
		if e.m.Done() {
			return StopEnd, nil
		}
	}
	return StopStep, nil
}

// Continue runs forward until a breakpoint, watchpoint, or the end of the
// window (where the faulting instruction, if any, is next).
func (e *Engine) Continue() (StopReason, error) {
	return e.Step(^uint64(0)) // the window is far shorter than 2^64
}

// SeekTo travels to an absolute position: it restores the nearest
// checkpoint at or before the target whenever that lands closer than the
// current position — backward always, forward when a checkpoint lets the
// seek skip ahead — then re-executes to the target, so on a warmed window
// the cost is bounded by the checkpoint spacing, not the distance.
// Breakpoints and watchpoints do not fire during a seek.
func (e *Engine) SeekTo(target uint64) error {
	if target > e.m.Window() {
		target = e.m.Window()
	}
	if c := e.ckpts[e.ckptIndexAtOrBefore(target)]; target < e.m.Pos() || c.pos > e.m.Pos() {
		e.m.Restore(c.snap)
		e.nextCkptAt = c.pos + e.cfg.CheckpointEvery
	}
	// Breakpoints and watchpoints never fire during a seek, so the
	// re-execution runs batched through the block engine.
	if err := e.forwardTo(target); err != nil {
		return err
	}
	e.primeWatches()
	return nil
}

// ReverseStep travels n instructions backward. It reports StopStart when
// the request was clamped at the window start.
func (e *Engine) ReverseStep(n uint64) (StopReason, error) {
	pos := e.m.Pos()
	if n >= pos {
		if err := e.SeekTo(0); err != nil {
			return StopStart, err
		}
		if n > pos {
			return StopStart, nil
		}
		return StopStep, nil
	}
	if err := e.SeekTo(pos - n); err != nil {
		return StopStep, err
	}
	return StopStep, nil
}

// ReverseContinue runs backward to the most recent earlier position where
// a breakpoint or watchpoint would stop execution, or to the window start.
//
// A breakpoint stop is a position p < Pos whose PC is a breakpoint. A
// watchpoint stop is the position of the instruction that changed the
// watched word — reverse lands *before* the mutator commits, so the
// developer inspects the pre-corruption state and the culprit's PC, while
// forward execution stops just after the change (conventional debugger
// asymmetry).
//
// The scan walks checkpoint gaps newest-first: restore the previous
// checkpoint, re-execute forward to the scan limit recording the last
// stop, and only widen backward when a gap contains none — so the common
// "the write was recent" case costs one gap, and the worst case is one
// pass over the window. With Config.ScanParallelism > 1 the gaps are
// scanned speculatively in parallel on private scan machines (still
// merged newest-first, older gaps cancelled once a newer one stops), so
// the worst case costs one pass over the window divided across workers.
func (e *Engine) ReverseContinue() (StopReason, error) {
	if len(e.breaks) == 0 && len(e.watchAddrs) == 0 {
		// Nothing can stop a reverse scan; land on the window start
		// without re-executing every gap per-instruction.
		if err := e.SeekTo(0); err != nil {
			return StopStart, err
		}
		return StopStart, nil
	}
	if e.cfg.ScanParallelism > 1 {
		return e.reverseContinueParallel()
	}
	limit := e.m.Pos()
	for {
		i := e.ckptIndexAtOrBefore(limit)
		c := e.ckpts[i]
		if c.pos == limit && limit > 0 {
			// The checkpoint sits exactly at the scan limit; the gap to
			// scan is the one before it.
			c = e.ckpts[i-1]
		}
		e.m.Restore(c.snap)
		e.nextCkptAt = c.pos + e.cfg.CheckpointEvery
		e.primeWatches()

		g := scanGap(e.m, e.breaks, e.watchAddrs, e.watchVals, limit, e.forwardOne, nil)
		if g.err != nil {
			return StopStep, g.err
		}
		if g.hitPos >= 0 {
			if err := e.SeekTo(uint64(g.hitPos)); err != nil {
				return g.reason, err
			}
			e.lastWatch = g.watch
			return g.reason, nil
		}
		if c.pos == 0 {
			if err := e.SeekTo(0); err != nil {
				return StopStart, err
			}
			return StopStart, nil
		}
		limit = c.pos
	}
}

// gapScan is one checkpoint gap's reverse-scan outcome: the last stop the
// gap contains (hitPos < 0 when none), a forward-execution error, or a
// cancellation by a newer gap's stop.
type gapScan struct {
	hitPos    int64
	reason    StopReason
	watch     *WatchHit
	err       error
	cancelled bool
}

// cancelCheckMask throttles the cancellation poll in the scan loop to one
// atomic load per 512 instructions.
const cancelCheckMask = 512 - 1

// scanGap re-executes m — already restored to a gap-start checkpoint,
// with vals primed there — up to limit, recording the LAST break or watch
// stop in the gap: a watch stop is the pre-step position of the mutating
// instruction, a break stop the post-step position when it is still below
// the limit (the limit itself is where the reverse motion started). step
// advances m one instruction; the engine's own machine checkpoints along
// the way, scan machines step plainly. An execution error abandons the
// gap, discarding any stop already recorded in it, exactly as the
// sequential walk does. A non-nil cancel flag abandons the scan once a
// newer gap has decided the result.
func scanGap(m *core.ReplayMachine, breaks map[uint32]bool, addrs []uint32,
	vals map[uint32]watchVal, limit uint64, step func() error, cancel *atomic.Bool) gapScan {
	g := gapScan{hitPos: -1, reason: StopStep}
	if breaks[m.PC()] && m.Pos() < limit {
		g.hitPos, g.reason = int64(m.Pos()), StopBreak
	}
	for n := 0; m.Pos() < limit && !m.Done(); n++ {
		if cancel != nil && n&cancelCheckMask == 0 && cancel.Load() {
			g.cancelled = true
			return g
		}
		p := m.Pos()
		if err := step(); err != nil {
			g.err = err
			return g
		}
		if hit := checkWatchVals(m, addrs, vals); hit != nil {
			// The instruction at p is the mutator.
			g.hitPos, g.reason, g.watch = int64(p), StopWatch, hit
		}
		if m.Pos() < limit && breaks[m.PC()] {
			g.hitPos, g.reason, g.watch = int64(m.Pos()), StopBreak, nil
		}
	}
	return g
}

// newScanMachine mints a private replay machine over the engine's logs
// for the speculative gap scan. It mirrors the main machine's build
// exactly, so any checkpoint snapshot restores into it.
func (e *Engine) newScanMachine() *core.ReplayMachine {
	r := core.NewReplayer(e.img, e.logs)
	r.LogCodeLoads = e.cfg.LogCodeLoads
	r.DictOptions = e.cfg.DictOptions
	r.MaxPages = e.cfg.MaxPages
	r.TraceDepth = e.cfg.TraceDepth
	return r.Machine(core.MachineOptions{TrackKnown: true})
}

// reverseContinueParallel is the speculative reverse scan: it decomposes
// the history below the current position into checkpoint gaps and scans
// up to ScanParallelism of them concurrently per round, newest-first.
// Each gap's checkpoint is restored into a private scan machine on the
// engine's goroutine (snapshot restores share copy-on-write state and
// must not race), then the gaps re-execute in parallel; once a newer gap
// records a stop, the older gaps of the round are cancelled. Results
// merge in gap order, so the stop chosen — and the error surfaced, if a
// gap fails before any newer gap stops — is exactly the sequential
// walk's.
func (e *Engine) reverseContinueParallel() (StopReason, error) {
	limit := e.m.Pos()
	i := e.ckptIndexAtOrBefore(limit)
	if e.ckpts[i].pos == limit && limit > 0 {
		// The checkpoint sits exactly at the scan limit; the newest gap
		// to scan is the one before it.
		i--
	}
	// gaps[k] spans [gaps[k].ck.pos, gaps[k].limit), newest first.
	type gap struct {
		ck    *checkpoint
		limit uint64
	}
	gaps := make([]gap, 0, i+1)
	for up := limit; i >= 0; i-- {
		gaps = append(gaps, gap{e.ckpts[i], up})
		up = e.ckpts[i].pos
	}

	workers := min(e.cfg.ScanParallelism, len(gaps))
	for len(e.scanners) < workers {
		e.scanners = append(e.scanners, e.newScanMachine())
	}

	finish := func(g gapScan) (StopReason, error) {
		if g.err != nil {
			return StopStep, g.err
		}
		if err := e.SeekTo(uint64(g.hitPos)); err != nil {
			return g.reason, err
		}
		e.lastWatch = g.watch
		return g.reason, nil
	}

	for start := 0; start < len(gaps); start += workers {
		batch := gaps[start:min(start+workers, len(gaps))]
		results := make([]gapScan, len(batch))
		cancels := make([]atomic.Bool, len(batch))
		var wg sync.WaitGroup
		for k := range batch {
			m := e.scanners[k]
			// Serialized on this goroutine: restoring shares pages with
			// the snapshot copy-on-write, mutating its sharing bits.
			m.Restore(batch[k].ck.snap)
			vals := make(map[uint32]watchVal, len(e.watchAddrs))
			primeWatchVals(m, e.watchAddrs, vals)
			wg.Add(1)
			go func(k int, m *core.ReplayMachine, vals map[uint32]watchVal) {
				defer wg.Done()
				g := scanGap(m, e.breaks, e.watchAddrs, vals, batch[k].limit, m.StepOne, &cancels[k])
				results[k] = g
				if !g.cancelled && (g.err != nil || g.hitPos >= 0) {
					// This gap decides over everything older; stop wasting
					// cores on gaps whose results cannot win the merge.
					for o := k + 1; o < len(batch); o++ {
						cancels[o].Store(true)
					}
				}
			}(k, m, vals)
		}
		wg.Wait()
		for k := range results {
			g := results[k]
			if g.cancelled {
				// Only reachable if the canceller's own result left the
				// merge undecided — it cannot, but a wrong stop position
				// would be silent, so rescan this gap sequentially.
				e.m.Restore(batch[k].ck.snap)
				e.nextCkptAt = batch[k].ck.pos + e.cfg.CheckpointEvery
				e.primeWatches()
				g = scanGap(e.m, e.breaks, e.watchAddrs, e.watchVals, batch[k].limit, e.forwardOne, nil)
			}
			if g.err != nil || g.hitPos >= 0 {
				return finish(g)
			}
		}
	}
	if err := e.SeekTo(0); err != nil {
		return StopStart, err
	}
	return StopStart, nil
}
