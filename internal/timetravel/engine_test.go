package timetravel

import (
	"math/rand"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/cache"
	"bugnet/internal/core"
	"bugnet/internal/isa"
	"bugnet/internal/kernel"
)

func tinyCache() cache.Config {
	return cache.Config{
		L1: cache.LevelConfig{SizeBytes: 1 << 10, BlockBytes: 32, Assoc: 2},
		L2: cache.LevelConfig{SizeBytes: 8 << 10, BlockBytes: 32, Assoc: 4},
	}
}

// corruptorProgram is the canonical time-travel scenario: a loop bound of
// 9 overflows the 8-slot buf, and the 9th store lands on ptr — the
// faulting store. The crash then dereferences the corrupted pointer.
const corruptorProgram = `
        .data
buf:    .space 32
ptr:    .word 1024
        .text
main:   li   s0, 0
        la   s1, buf
fill:   slli t0, s0, 2
        add  t0, s1, t0
store:  sw   s0, (t0)
        addi s0, s0, 1
        li   t1, 9
        blt  s0, t1, fill
        la   t2, ptr
        lw   t3, (t2)
boom:   lw   a0, (t3)
`

// recordCrash records src and returns the report plus image; the program
// must crash.
func recordCrash(t testing.TB, src string, interval uint64) (*core.CrashReport, *asm.Image) {
	t.Helper()
	img := asm.MustAssemble("tt.s", src)
	res, rep, _ := core.Record(img, kernel.Config{},
		core.Config{IntervalLength: interval, Cache: tinyCache()})
	if res.Crash == nil {
		t.Fatal("program did not crash")
	}
	return rep, img
}

func newTestEngine(t testing.TB, ckptEvery uint64) (*Engine, *asm.Image) {
	t.Helper()
	rep, img := recordCrash(t, corruptorProgram, 16)
	eng, tid, err := NewEngineForThread(img, rep, -1, Config{CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatal(err)
	}
	if tid != 0 {
		t.Fatalf("crashing tid = %d", tid)
	}
	return eng, img
}

func TestEngineForwardAndBreak(t *testing.T) {
	eng, img := newTestEngine(t, 8)
	store := img.MustSymbol("store")
	eng.AddBreak(store)
	reason, err := eng.Continue()
	if err != nil || reason != StopBreak {
		t.Fatalf("continue: %v, %v", reason, err)
	}
	if eng.PC() != store {
		t.Fatalf("stopped at %#x, want %#x", eng.PC(), store)
	}
	if s0 := eng.Registers().Regs[isa.RegS0]; s0 != 0 {
		t.Fatalf("s0 at first store = %d", s0)
	}
	// Run to the end: the faulting instruction is next.
	eng.ClearBreak(store)
	if reason, err = eng.Continue(); err != nil || reason != StopEnd {
		t.Fatalf("continue to end: %v, %v", reason, err)
	}
	if f := eng.Fault(); f == nil || f.PC != img.MustSymbol("boom") {
		t.Fatalf("fault = %+v", eng.Fault())
	}
}

func TestEngineReverseStepBacktracksExactly(t *testing.T) {
	eng, _ := newTestEngine(t, 8)
	// Walk forward recording reference states, then reverse-step through
	// them backwards.
	type ref struct {
		pc   uint32
		regs [32]uint32
	}
	var states []ref
	for !eng.Done() {
		states = append(states, ref{eng.PC(), eng.Registers().Regs})
		if _, err := eng.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(states) - 1; i >= 0; i-- {
		reason, err := eng.ReverseStep(1)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(i) != eng.Pos() {
			t.Fatalf("reverse-step landed at %d, want %d", eng.Pos(), i)
		}
		if eng.PC() != states[i].pc || eng.Registers().Regs != states[i].regs {
			t.Fatalf("state at pos %d differs after reverse-step", i)
		}
		if i > 0 && reason != StopStep {
			t.Fatalf("reason = %v", reason)
		}
	}
	// One more reverse-step at the window start clamps.
	reason, err := eng.ReverseStep(5)
	if err != nil || reason != StopStart {
		t.Fatalf("reverse past start: %v, %v", reason, err)
	}
}

func TestEngineWatchpointForwardAndReverse(t *testing.T) {
	eng, img := newTestEngine(t, 8)
	ptr := img.MustSymbol("ptr")
	store := img.MustSymbol("store")
	eng.AddWatch(ptr)

	// Forward: the watch fires just after the 9th store commits.
	reason, err := eng.Continue()
	if err != nil || reason != StopWatch {
		t.Fatalf("continue: %v, %v", reason, err)
	}
	hit := eng.LastWatch()
	if hit == nil || hit.Addr != ptr&^3 {
		t.Fatalf("watch hit = %+v", hit)
	}
	if hit.OldKnown || !hit.NewKnown || hit.New != 8 {
		t.Fatalf("watch transition = %+v; want unknown -> 8", hit)
	}
	mutatorPos := eng.Pos() - 1

	// Run to the end, then reverse-continue: lands *on* the faulting
	// store, pre-commit, with the watched word still unknown (§7.1).
	if reason, err = eng.Continue(); err != nil || reason != StopEnd {
		t.Fatalf("to end: %v, %v", reason, err)
	}
	reason, err = eng.ReverseContinue()
	if err != nil || reason != StopWatch {
		t.Fatalf("reverse-continue: %v, %v", reason, err)
	}
	if eng.Pos() != mutatorPos {
		t.Fatalf("rcont landed at %d, want %d", eng.Pos(), mutatorPos)
	}
	if eng.PC() != store {
		t.Fatalf("rcont pc = %#x, want the store at %#x", eng.PC(), store)
	}
	if s0 := eng.Registers().Regs[isa.RegS0]; s0 != 8 {
		t.Fatalf("s0 at the faulting store = %d, want 8", s0)
	}
	if _, known := eng.ReadWord(ptr); known {
		t.Fatal("ptr must still be unknown before the corrupting store")
	}
	// A further reverse-continue finds nothing older and stops at 0.
	if reason, err = eng.ReverseContinue(); err != nil || reason != StopStart {
		t.Fatalf("second rcont: %v, %v", reason, err)
	}
}

func TestEngineReverseContinueBreakpoint(t *testing.T) {
	eng, img := newTestEngine(t, 8)
	store := img.MustSymbol("store")
	eng.AddBreak(store)
	// Forward: count hits.
	hits := 0
	var positions []uint64
	for {
		reason, err := eng.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if reason != StopBreak {
			break
		}
		hits++
		positions = append(positions, eng.Pos())
	}
	if hits != 9 {
		t.Fatalf("forward hits = %d, want 9", hits)
	}
	// Reverse: visits the same positions newest-first.
	for i := len(positions) - 1; i >= 0; i-- {
		reason, err := eng.ReverseContinue()
		if err != nil || reason != StopBreak {
			t.Fatalf("rcont: %v, %v", reason, err)
		}
		if eng.Pos() != positions[i] {
			t.Fatalf("rcont landed at %d, want %d", eng.Pos(), positions[i])
		}
	}
	if reason, err := eng.ReverseContinue(); err != nil || reason != StopStart {
		t.Fatalf("final rcont: %v, %v", reason, err)
	}
}

func TestEngineCheckpointEviction(t *testing.T) {
	rep, img := recordCrash(t, corruptorProgram, 16)
	eng, _, err := NewEngineForThread(img, rep, -1, Config{
		CheckpointEvery:  4,
		CheckpointBudget: 1, // absurdly small: everything but anchor+newest evicts
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Continue(); err != nil {
		t.Fatal(err)
	}
	count, _ := eng.Checkpoints()
	if count > 2 {
		t.Fatalf("budget ignored: %d checkpoints live", count)
	}
	// Reverse execution still works, just via wider gaps.
	end := eng.Pos()
	if _, err := eng.ReverseStep(3); err != nil {
		t.Fatal(err)
	}
	if eng.Pos() != end-3 {
		t.Fatalf("pos = %d, want %d", eng.Pos(), end-3)
	}
	if eng.ckpts[0].pos != 0 {
		t.Fatal("the pos-0 anchor must never evict")
	}
}

// TestSeekDeterminismProperty is the reverse-execution determinism
// property the subsystem rests on: for random positions p, SeekTo(p) —
// whatever checkpoint it restores through — yields byte-identical
// registers and known-memory to a fresh forward replay to p. Exercised
// over a single-threaded crash report and a thread of a multithreaded
// one.
func TestSeekDeterminismProperty(t *testing.T) {
	mtProgram := `
        .data
shared: .word 0
        .text
main:   la   a0, worker
        li   a7, 8
        syscall
        li   t0, 200
mloop:  addi t0, t0, -1
        bnez t0, mloop
mspin:  j    mspin          # main spins forever; worker crashes
worker: li   t0, 100
        la   t1, shared
wloop:  lw   t2, (t1)
        addi t2, t2, 1
        sw   t2, (t1)
        addi t0, t0, -1
        bnez t0, wloop
boom:   lw   a0, (zero)
`
	cases := []struct {
		name  string
		rep   *core.CrashReport
		img   *asm.Image
		tid   int
		cores int
	}{}
	{
		rep, img := recordCrash(t, corruptorProgram, 16)
		cases = append(cases, struct {
			name  string
			rep   *core.CrashReport
			img   *asm.Image
			tid   int
			cores int
		}{"singlethread", rep, img, -1, 1})
	}
	{
		img := asm.MustAssemble("mt.s", mtProgram)
		res, rep, _ := core.Record(img, kernel.Config{Cores: 2},
			core.Config{IntervalLength: 32, Cache: tinyCache()})
		if res.Crash == nil || res.Crash.TID != 1 {
			t.Fatalf("mt crash = %+v", res.Crash)
		}
		cases = append(cases, struct {
			name  string
			rep   *core.CrashReport
			img   *asm.Image
			tid   int
			cores int
		}{"multithread", rep, img, 1, 2})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, tid, err := NewEngineForThread(tc.img, tc.rep, tc.tid, Config{CheckpointEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			logs := tc.rep.FLLs[tid]
			window := eng.Window()
			if window < 4 {
				t.Fatalf("window too small: %d", window)
			}
			// Warm the checkpoint set by visiting the whole window once.
			if _, err := eng.Continue(); err != nil {
				t.Fatal(err)
			}

			freshTo := func(p uint64) *core.ReplayMachine {
				r := core.NewReplayer(tc.img, logs)
				r.LogCodeLoads = tc.rep.LogCodeLoads
				r.DictOptions = tc.rep.DictOptions
				m := r.Machine(core.MachineOptions{TrackKnown: true})
				for m.Pos() < p && !m.Done() {
					if err := m.StepOne(); err != nil {
						t.Fatalf("fresh replay to %d: %v", p, err)
					}
				}
				return m
			}

			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 40; i++ {
				p := uint64(rng.Int63n(int64(window + 1)))
				if err := eng.SeekTo(p); err != nil {
					t.Fatalf("SeekTo(%d): %v", p, err)
				}
				if eng.Pos() != p {
					t.Fatalf("SeekTo(%d) landed at %d", p, eng.Pos())
				}
				ref := freshTo(p)
				if eng.Registers() != ref.Registers() {
					t.Fatalf("registers at %d differ:\n seek: %+v\nfresh: %+v", p, eng.Registers(), ref.Registers())
				}
				sk, fr := eng.m.KnownWords(), ref.KnownWords()
				if len(sk) != len(fr) {
					t.Fatalf("known-set sizes at %d differ: %d vs %d", p, len(sk), len(fr))
				}
				for j, addr := range sk {
					if fr[j] != addr {
						t.Fatalf("known set at %d differs at %#x vs %#x", p, addr, fr[j])
					}
					va, ka := eng.ReadWord(addr)
					vb, kb := ref.ReadWord(addr)
					if va != vb || ka != kb {
						t.Fatalf("word %#x at %d: %#x/%v vs %#x/%v", addr, p, va, ka, vb, kb)
					}
				}
			}
		})
	}
}

func TestEngineExecProtocol(t *testing.T) {
	eng, img := newTestEngine(t, 8)
	out := eng.Exec(Command{Cmd: "break", Sym: "store"})
	if out.Error != "" || len(out.Breaks) != 1 {
		t.Fatalf("break: %+v", out)
	}
	out = eng.Exec(Command{Cmd: "cont"})
	if out.Stop != "breakpoint" || out.PC != img.MustSymbol("store") {
		t.Fatalf("cont: %+v", out)
	}
	out = eng.Exec(Command{Cmd: "regs"})
	if len(out.Regs) != isa.NumRegs {
		t.Fatalf("regs: %d entries", len(out.Regs))
	}
	out = eng.Exec(Command{Cmd: "mem", Sym: "ptr", N: 2})
	if len(out.Mem) != 2 {
		t.Fatalf("mem: %+v", out.Mem)
	}
	out = eng.Exec(Command{Cmd: "seek", Pos: 3})
	if out.Pos != 3 {
		t.Fatalf("seek: %+v", out)
	}
	out = eng.Exec(Command{Cmd: "backtrace"})
	if len(out.Backtrace) == 0 {
		t.Fatalf("backtrace empty: %+v", out)
	}
	out = eng.Exec(Command{Cmd: "nonsense"})
	if out.Error == "" {
		t.Fatal("unknown command must error")
	}
	out = eng.Exec(Command{Cmd: "break", Sym: "no_such_symbol"})
	if out.Error == "" {
		t.Fatal("unknown symbol must error")
	}
	out = eng.Exec(Command{Cmd: "delete", Sym: "store"})
	if out.Error != "" {
		t.Fatalf("delete: %+v", out)
	}
	// The faulting PC is reachable: a breakpoint there reports as hit even
	// though it coincides with the end of the window.
	out = eng.Exec(Command{Cmd: "runto", Sym: "boom"})
	if out.Error != "" || out.Stop != "breakpoint" || out.PC != img.MustSymbol("boom") || !out.Done {
		t.Fatalf("runto: %+v", out)
	}
}
