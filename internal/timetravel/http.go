package timetravel

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"bugnet/internal/httpjson"
)

// maxBodyBytes bounds one debug-API request body; commands and session
// opens are tiny JSON documents.
const maxBodyBytes = 1 << 16

// OpenRequest is the body of POST /api/v1/debug/sessions.
type OpenRequest struct {
	// Report is the stored report id (content address) to debug.
	Report string `json:"report"`
	// TID selects the thread; omitted or negative picks the crashing one.
	TID *int `json:"tid,omitempty"`
}

// RegisterRoutes installs the remote-debug API onto mux (each path also
// reachable without the /api/v1 prefix as a deprecated alias):
//
//	POST   /api/v1/debug/sessions           — open a session over a stored report
//	GET    /api/v1/debug/sessions           — list live sessions
//	GET    /api/v1/debug/sessions/{id}      — one session's state
//	POST   /api/v1/debug/sessions/{id}/cmd  — execute one Command
//	DELETE /api/v1/debug/sessions/{id}      — close a session
//
// Failures use the standardized httpjson error envelope. The routes are
// transport only; every decision lives in Manager and Engine, so tests
// drive them in-process and bugnet-serve mounts them next to the triage
// API.
func RegisterRoutes(mux *http.ServeMux, m *Manager) {
	httpjson.Handle(mux, "POST /debug/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req OpenRequest
		if err := readJSON(w, r, &req); err != nil {
			httpjson.Fail(w, r, http.StatusBadRequest, httpjson.CodeBadRequest, err.Error())
			return
		}
		if req.Report == "" {
			httpjson.Fail(w, r, http.StatusBadRequest, httpjson.CodeBadRequest, "missing report id")
			return
		}
		tid := -1
		if req.TID != nil {
			tid = *req.TID
		}
		s, err := m.Open(req.Report, tid)
		switch {
		case errors.Is(err, ErrUnknownReport):
			httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, err.Error())
			return
		case errors.Is(err, ErrSessionLimit):
			httpjson.Fail(w, r, http.StatusTooManyRequests, httpjson.CodeOverloaded, err.Error())
			return
		case errors.Is(err, ErrClosed):
			httpjson.Fail(w, r, http.StatusServiceUnavailable, httpjson.CodeUnavailable, err.Error())
			return
		case err != nil:
			// Undecodable report, unknown binary, oversized window: the
			// request named something we cannot debug.
			httpjson.Fail(w, r, http.StatusUnprocessableEntity, httpjson.CodeUnprocessable, err.Error())
			return
		}
		info, _ := m.Info(s.ID)
		httpjson.Write(w, http.StatusCreated, info)
	})

	httpjson.Handle(mux, "GET /debug/sessions", func(w http.ResponseWriter, r *http.Request) {
		httpjson.Write(w, http.StatusOK, m.List())
	})

	httpjson.Handle(mux, "GET /debug/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := m.Info(r.PathValue("id"))
		if !ok {
			httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no such session")
			return
		}
		httpjson.Write(w, http.StatusOK, info)
	})

	httpjson.Handle(mux, "POST /debug/sessions/{id}/cmd", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no such session")
			return
		}
		var cmd Command
		if err := readJSON(w, r, &cmd); err != nil {
			httpjson.Fail(w, r, http.StatusBadRequest, httpjson.CodeBadRequest, err.Error())
			return
		}
		httpjson.Write(w, http.StatusOK, s.Do(cmd))
	})

	httpjson.Handle(mux, "DELETE /debug/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !m.CloseSession(r.PathValue("id")) {
			httpjson.Fail(w, r, http.StatusNotFound, httpjson.CodeNotFound, "no such session")
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

// NewHandler returns a standalone handler serving only the debug API.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	RegisterRoutes(mux, m)
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
