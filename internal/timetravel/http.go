package timetravel

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"bugnet/internal/httpjson"
)

// maxBodyBytes bounds one debug-API request body; commands and session
// opens are tiny JSON documents.
const maxBodyBytes = 1 << 16

// OpenRequest is the body of POST /debug/sessions.
type OpenRequest struct {
	// Report is the stored report id (content address) to debug.
	Report string `json:"report"`
	// TID selects the thread; omitted or negative picks the crashing one.
	TID *int `json:"tid,omitempty"`
}

// RegisterRoutes installs the remote-debug API onto mux:
//
//	POST   /debug/sessions           — open a session over a stored report
//	GET    /debug/sessions           — list live sessions
//	GET    /debug/sessions/{id}      — one session's state
//	POST   /debug/sessions/{id}/cmd  — execute one Command
//	DELETE /debug/sessions/{id}      — close a session
//
// The routes are transport only; every decision lives in Manager and
// Engine, so tests drive them in-process and bugnet-serve mounts them
// next to the triage API.
func RegisterRoutes(mux *http.ServeMux, m *Manager) {
	mux.HandleFunc("POST /debug/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req OpenRequest
		if err := readJSON(w, r, &req); err != nil {
			httpjson.Error(w, http.StatusBadRequest, err.Error())
			return
		}
		if req.Report == "" {
			httpjson.Error(w, http.StatusBadRequest, "missing report id")
			return
		}
		tid := -1
		if req.TID != nil {
			tid = *req.TID
		}
		s, err := m.Open(req.Report, tid)
		switch {
		case errors.Is(err, ErrUnknownReport):
			httpjson.Error(w, http.StatusNotFound, err.Error())
			return
		case errors.Is(err, ErrSessionLimit):
			httpjson.Error(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, ErrClosed):
			httpjson.Error(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			// Undecodable report, unknown binary, oversized window: the
			// request named something we cannot debug.
			httpjson.Error(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		info, _ := m.Info(s.ID)
		httpjson.Write(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /debug/sessions", func(w http.ResponseWriter, r *http.Request) {
		httpjson.Write(w, http.StatusOK, m.List())
	})

	mux.HandleFunc("GET /debug/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := m.Info(r.PathValue("id"))
		if !ok {
			httpjson.Error(w, http.StatusNotFound, "no such session")
			return
		}
		httpjson.Write(w, http.StatusOK, info)
	})

	mux.HandleFunc("POST /debug/sessions/{id}/cmd", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpjson.Error(w, http.StatusNotFound, "no such session")
			return
		}
		var cmd Command
		if err := readJSON(w, r, &cmd); err != nil {
			httpjson.Error(w, http.StatusBadRequest, err.Error())
			return
		}
		httpjson.Write(w, http.StatusOK, s.Do(cmd))
	})

	mux.HandleFunc("DELETE /debug/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !m.CloseSession(r.PathValue("id")) {
			httpjson.Error(w, http.StatusNotFound, "no such session")
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

// NewHandler returns a standalone handler serving only the debug API.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	RegisterRoutes(mux, m)
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
