package timetravel

import (
	"fmt"
	"testing"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/kernel"
)

// benchWindow records a clean-exit loop workload of roughly `instrs`
// replayed instructions and returns its report and image.
func benchWindow(b *testing.B, instrs uint64) (*core.CrashReport, *asm.Image) {
	b.Helper()
	iters := instrs / 8 // 8 instructions per loop body
	src := fmt.Sprintf(`
        .data
buf:    .space 64
        .text
main:   li   s0, %d
        la   s1, buf
loop:   andi t0, s0, 15
        slli t0, t0, 2
        add  t0, s1, t0
        lw   t1, (t0)
        add  t1, t1, s0
        sw   t1, (t0)
        addi s0, s0, -1
        bnez s0, loop
        li   a0, 0
        li   a7, 1
        syscall
`, iters)
	img := asm.MustAssemble("bench.s", src)
	res, rep, _ := core.Record(img, kernel.Config{},
		core.Config{IntervalLength: 10_000, Cache: tinyCache()})
	if res.Crash != nil {
		b.Fatalf("bench workload crashed: %v", res.Crash)
	}
	return rep, img
}

// engineAtEnd builds an engine, runs it to the window end (populating the
// checkpoint set), and returns it.
func engineAtEnd(b *testing.B, rep *core.CrashReport, img *asm.Image) *Engine {
	b.Helper()
	eng, _, err := NewEngineForThread(img, rep, -1, Config{CheckpointEvery: 1000})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Continue(); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkReverseStep measures one backward step at the end of windows of
// growing length. With checkpoints the cost is bounded by CheckpointEvery
// — the ns/op must stay near-constant as the window quadruples — where the
// re-execute-from-zero baseline below grows linearly.
func BenchmarkReverseStep(b *testing.B) {
	for _, window := range []uint64{40_000, 80_000, 160_000} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			rep, img := benchWindow(b, window)
			eng := engineAtEnd(b, rep, img)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.ReverseStep(1); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Step(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReverseStepLinear is the pre-checkpoint baseline: core.Debugger
// travels backward by re-executing from the window start, so one reverse
// step costs O(window).
func BenchmarkReverseStepLinear(b *testing.B) {
	for _, window := range []uint64{40_000, 80_000, 160_000} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			rep, img := benchWindow(b, window)
			d, err := core.NewDebugger(img, rep.FLLs[0])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Continue(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Goto(d.Pos() - 1); err != nil {
					b.Fatal(err)
				}
				if _, err := d.Step(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSeek measures random absolute seeks across a warmed window:
// restore nearest checkpoint + at most CheckpointEvery forward steps.
func BenchmarkSeek(b *testing.B) {
	rep, img := benchWindow(b, 160_000)
	eng := engineAtEnd(b, rep, img)
	window := eng.Window()
	// A fixed pseudo-random walk, independent of b.N splits.
	next := uint64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next = next*6364136223846793005 + 1442695040888963407
		if err := eng.SeekTo(next % (window + 1)); err != nil {
			b.Fatal(err)
		}
	}
}
