// Package faultinject is a seedable fault plane for chaos testing. A
// Plane hands out filesystem wrappers (FS) and http.RoundTripper
// wrappers (Transport) that production code threads behind its existing
// interfaces; with a nil Plane every wrapper collapses to a direct
// passthrough, so non-chaos builds pay a single nil-check. The chaos
// harness flips faults on and off through SetDiskFault, SetNetFault,
// and Partition according to its seeded schedule; the schedule is the
// deterministic part, while individual probabilistic outcomes draw from
// the plane's own seeded generator.
package faultinject

import (
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"bugnet/internal/obs"
)

// Injected-fault sentinels. Portable stand-ins for the syscall errnos
// they mimic; callers match with errors.Is.
var (
	// ErrInjectedIO mimics EIO on a faulted disk operation.
	ErrInjectedIO = errors.New("faultinject: injected I/O error")
	// ErrNoSpace mimics ENOSPC on a faulted write.
	ErrNoSpace = errors.New("faultinject: injected no space left on device")
	// ErrReset mimics a connection reset by the remote peer.
	ErrReset = errors.New("faultinject: injected connection reset")
	// ErrPartitioned reports a request refused by an active partition.
	ErrPartitioned = errors.New("faultinject: network partition")
)

var (
	faultsInjected = obs.Default.CounterVec("bugnet_faults_injected_total",
		"Faults injected by the chaos plane, by kind.", "kind")
	mFaultEIO       = faultsInjected.With("eio")
	mFaultENOSPC    = faultsInjected.With("enospc")
	mFaultTorn      = faultsInjected.With("torn")
	mFaultDiskLat   = faultsInjected.With("disk_latency")
	mFaultNetLat    = faultsInjected.With("net_latency")
	mFaultReset     = faultsInjected.With("reset")
	mFaultPartition = faultsInjected.With("partition")
)

// Op names one filesystem operation class a DiskFault can target.
type Op int

const (
	OpCreate Op = iota
	OpWrite
	OpRename
	OpTruncate
	OpRemove
	OpMkdir
	OpRead
	OpStat
)

// DiskFault describes what a faulted filesystem does to matching
// operations while it is installed.
type DiskFault struct {
	// Err is the injected error: ErrInjectedIO, ErrNoSpace, or any
	// sentinel the test wants surfaced (default ErrInjectedIO).
	Err error
	// Prob is the per-operation injection probability in (0,1]; zero
	// means 1.0 (every matching operation fails).
	Prob float64
	// Torn makes failing writes first land a short prefix of the buffer,
	// modeling a torn write interrupted by power loss.
	Torn bool
	// Latency delays every matching operation, fault or not.
	Latency time.Duration
	// Ops limits the fault to these operation classes; nil means the
	// write side: create, write, rename, truncate.
	Ops []Op
}

func (f *DiskFault) matches(op Op) bool {
	if f.Ops == nil {
		switch op {
		case OpCreate, OpWrite, OpRename, OpTruncate:
			return true
		}
		return false
	}
	for _, o := range f.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// NetFault describes what the transport wrapper does to every
// non-partitioned request while installed.
type NetFault struct {
	// Latency delays each request before it is sent.
	Latency time.Duration
	// ResetProb is the probability in [0,1] of failing the request with
	// ErrReset instead of sending it.
	ResetProb float64
}

// Plane is one seeded fault domain shared by every wrapper it vends.
type Plane struct {
	mu         sync.Mutex
	rng        *rand.Rand
	disk       map[string]*DiskFault
	net        *NetFault
	partitions map[[2]string]bool
}

// NewPlane builds a fault plane whose probabilistic draws come from the
// given seed.
func NewPlane(seed int64) *Plane {
	return &Plane{
		rng:        rand.New(rand.NewSource(seed)),
		disk:       make(map[string]*DiskFault),
		partitions: make(map[[2]string]bool),
	}
}

// FS returns the filesystem wrapper for one tag (typically one node's
// name). A nil Plane returns a nil *FS, whose methods all pass straight
// through to the os package.
func (p *Plane) FS(tag string) *FS {
	if p == nil {
		return nil
	}
	return &FS{plane: p, tag: tag}
}

// Transport wraps base (nil means http.DefaultTransport) with the
// plane's network faults as seen from the node self. A nil Plane
// returns base unchanged.
func (p *Plane) Transport(self string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if p == nil {
		return base
	}
	return &faultTransport{plane: p, self: self, base: base}
}

// SetDiskFault installs (or with nil clears) the disk fault for a tag.
func (p *Plane) SetDiskFault(tag string, f *DiskFault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f == nil {
		delete(p.disk, tag)
		return
	}
	p.disk[tag] = f
}

// SetNetFault installs (or with nil clears) the global network fault.
func (p *Plane) SetNetFault(f *NetFault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.net = f
}

// Partition severs traffic in both directions between two nodes named
// by their base URLs.
func (p *Plane) Partition(a, b string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitions[pairKey(a, b)] = true
}

// HealPartition restores traffic between two nodes.
func (p *Plane) HealPartition(a, b string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.partitions, pairKey(a, b))
}

// HealAll clears every installed fault and partition — the end-of-storm
// reset before convergence is asserted.
func (p *Plane) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.disk = make(map[string]*DiskFault)
	p.net = nil
	p.partitions = make(map[[2]string]bool)
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// diskDecision is one resolved draw against a tag's installed fault.
type diskDecision struct {
	latency time.Duration
	err     error
	torn    bool
	// tornLen is the prefix length for a torn write of n bytes.
	tornLen int
}

// diskCheck resolves what (if anything) to inject for one operation.
// n is the buffer length for write-class ops (torn prefix sizing).
func (p *Plane) diskCheck(tag string, op Op, n int) diskDecision {
	p.mu.Lock()
	f := p.disk[tag]
	if f == nil || !f.matches(op) {
		p.mu.Unlock()
		return diskDecision{}
	}
	d := diskDecision{latency: f.Latency}
	prob := f.Prob
	if prob <= 0 {
		prob = 1.0
	}
	if p.rng.Float64() < prob {
		d.err = f.Err
		if d.err == nil {
			d.err = ErrInjectedIO
		}
		if f.Torn && op == OpWrite && n > 0 {
			d.torn = true
			d.tornLen = p.rng.Intn(n)
		}
	}
	p.mu.Unlock()

	if d.latency > 0 {
		mFaultDiskLat.Inc()
		time.Sleep(d.latency)
	}
	if d.err != nil {
		switch {
		case d.torn:
			mFaultTorn.Inc()
		case errors.Is(d.err, ErrNoSpace):
			mFaultENOSPC.Inc()
		default:
			mFaultEIO.Inc()
		}
	}
	return d
}

// netCheck resolves (and applies the latency of) one request from self
// to dst, returning the injected error if any.
func (p *Plane) netCheck(self, dst string) error {
	p.mu.Lock()
	if p.partitions[pairKey(self, dst)] {
		p.mu.Unlock()
		mFaultPartition.Inc()
		return ErrPartitioned
	}
	f := p.net
	if f == nil {
		p.mu.Unlock()
		return nil
	}
	latency := f.Latency
	var err error
	if f.ResetProb > 0 && p.rng.Float64() < f.ResetProb {
		err = ErrReset
	}
	p.mu.Unlock()

	if latency > 0 {
		mFaultNetLat.Inc()
		time.Sleep(latency)
	}
	if err != nil {
		mFaultReset.Inc()
	}
	return err
}
