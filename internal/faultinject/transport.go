package faultinject

import (
	"net/http"
)

// faultTransport injects the plane's network faults into requests from
// one node. Partitions are checked against the destination's base URL
// (scheme://host); injected failures close the request body, per the
// http.RoundTripper contract.
type faultTransport struct {
	plane *Plane
	self  string
	base  http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	dst := req.URL.Scheme + "://" + req.URL.Host
	if err := t.plane.netCheck(t.self, dst); err != nil {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, err
	}
	return t.base.RoundTrip(req)
}

// CloseIdleConnections forwards to the wrapped transport so holders can
// still reclaim idle-connection goroutines through the fault layer.
func (t *faultTransport) CloseIdleConnections() {
	type idleCloser interface{ CloseIdleConnections() }
	if ic, ok := t.base.(idleCloser); ok {
		ic.CloseIdleConnections()
	}
}
