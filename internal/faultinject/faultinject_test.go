package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestNilFSPassthrough checks a nil *FS behaves exactly like the os
// package — the production fast path.
func TestNilFSPassthrough(t *testing.T) {
	var fsys *FS
	dir := t.TempDir()
	f, err := fsys.CreateTemp(dir, "x-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "final")
	if err := fsys.Rename(f.Name(), dst); err != nil {
		t.Fatal(err)
	}
	b, err := fsys.ReadFile(dst)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if _, ok := any(f).(*os.File); !ok {
		t.Fatalf("nil FS returned %T, want bare *os.File", f)
	}
}

// TestDiskFaultEIOAndHeal checks a write fault fires for its tag only
// and clears on SetDiskFault(nil).
func TestDiskFaultEIOAndHeal(t *testing.T) {
	p := NewPlane(1)
	p.SetDiskFault("a", &DiskFault{Err: ErrInjectedIO})
	dir := t.TempDir()

	if _, err := p.FS("a").CreateTemp(dir, "a-*.tmp"); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("tagged create err = %v, want injected EIO", err)
	}
	if _, err := p.FS("b").CreateTemp(dir, "b-*.tmp"); err != nil {
		t.Fatalf("untagged create err = %v, want nil", err)
	}
	if _, err := p.FS("a").Stat(dir); err != nil {
		t.Fatalf("read-side op under write-side fault err = %v, want nil", err)
	}

	p.SetDiskFault("a", nil)
	f, err := p.FS("a").CreateTemp(dir, "a-*.tmp")
	if err != nil {
		t.Fatalf("healed create err = %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("healed write err = %v", err)
	}
	f.Close()
}

// TestTornWrite checks a torn fault lands a strict prefix before the
// injected error surfaces.
func TestTornWrite(t *testing.T) {
	p := NewPlane(7)
	fsys := p.FS("n")
	dir := t.TempDir()
	f, err := fsys.OpenFile(filepath.Join(dir, "seg"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p.SetDiskFault("n", &DiskFault{Err: ErrInjectedIO, Torn: true, Ops: []Op{OpWrite}})

	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := f.Write(payload); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("torn write err = %v, want injected EIO", err)
	}
	p.SetDiskFault("n", nil)
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(len(payload)) {
		t.Fatalf("size after torn write = %d, want a strict prefix of %d", st.Size(), len(payload))
	}
}

// TestPartitionAndHeal checks the transport severs exactly the chosen
// pair, in both directions, and heals.
func TestPartitionAndHeal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	p := NewPlane(3)
	clientA := &http.Client{Transport: p.Transport("http://node-a", nil)}
	clientB := &http.Client{Transport: p.Transport("http://node-b", nil)}

	p.Partition("http://node-a", srv.URL)
	if _, err := clientA.Get(srv.URL); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned GET err = %v, want ErrPartitioned", err)
	}
	if resp, err := clientB.Get(srv.URL); err != nil {
		t.Fatalf("unpartitioned peer GET err = %v", err)
	} else {
		resp.Body.Close()
	}

	p.HealPartition("http://node-a", srv.URL)
	if resp, err := clientA.Get(srv.URL); err != nil {
		t.Fatalf("healed GET err = %v", err)
	} else {
		resp.Body.Close()
	}
}

// TestResetProbability checks ResetProb=1 fails every request and
// HealAll restores traffic.
func TestResetProbability(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	p := NewPlane(5)
	client := &http.Client{Transport: p.Transport("http://node-a", nil)}
	p.SetNetFault(&NetFault{ResetProb: 1})
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("reset fault GET succeeded, want error")
	}
	p.HealAll()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("after HealAll GET err = %v", err)
	}
	resp.Body.Close()
}

// TestSeededDeterminism checks two planes with the same seed make the
// same sequence of probabilistic draws.
func TestSeededDeterminism(t *testing.T) {
	draws := func(seed int64) []bool {
		p := NewPlane(seed)
		p.SetDiskFault("n", &DiskFault{Err: ErrInjectedIO, Prob: 0.5, Ops: []Op{OpStat}})
		fsys := p.FS("n")
		out := make([]bool, 64)
		for i := range out {
			_, err := fsys.Stat(os.TempDir())
			out[i] = err != nil
		}
		return out
	}
	a, b := draws(42), draws(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between same-seed planes", i)
		}
	}
}
