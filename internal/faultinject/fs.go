package faultinject

import (
	"io"
	"io/fs"
	"os"
)

// File is the slice of *os.File the bugnet storage layers use. Both the
// real *os.File and the fault-wrapped file satisfy it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.ReaderAt
	io.WriterAt
	Name() string
	Stat() (os.FileInfo, error)
	Sync() error
	Truncate(size int64) error
}

// FS routes filesystem calls through one tag's installed disk fault. A
// nil *FS is valid and passes every call straight to the os package —
// the single nil-check production builds pay.
type FS struct {
	plane *Plane
	tag   string
}

func (f *FS) check(op Op, n int) error {
	if f == nil || f.plane == nil {
		return nil
	}
	d := f.plane.diskCheck(f.tag, op, n)
	return d.err
}

func (f *FS) wrap(file *os.File) File {
	if f == nil || f.plane == nil {
		return file
	}
	return &faultFile{File: file, fs: f}
}

// Open opens a file for reading.
func (f *FS) Open(name string) (File, error) {
	if err := f.check(OpRead, 0); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(file), nil
}

// OpenFile is the generalized open; create-class flags draw the
// create fault.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpRead
	if flag&(os.O_CREATE|os.O_WRONLY|os.O_RDWR) != 0 {
		op = OpCreate
	}
	if err := f.check(op, 0); err != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f.wrap(file), nil
}

// CreateTemp mirrors os.CreateTemp.
func (f *FS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.check(OpCreate, 0); err != nil {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	file, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f.wrap(file), nil
}

// Rename mirrors os.Rename — the durability commit point for the
// triage store and the hinted-handoff spool.
func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.check(OpRename, 0); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return os.Rename(oldpath, newpath)
}

// Remove mirrors os.Remove.
func (f *FS) Remove(name string) error {
	if err := f.check(OpRemove, 0); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	return os.Remove(name)
}

// ReadFile mirrors os.ReadFile.
func (f *FS) ReadFile(name string) ([]byte, error) {
	if err := f.check(OpRead, 0); err != nil {
		return nil, &fs.PathError{Op: "read", Path: name, Err: err}
	}
	return os.ReadFile(name)
}

// Stat mirrors os.Stat.
func (f *FS) Stat(name string) (os.FileInfo, error) {
	if err := f.check(OpStat, 0); err != nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: err}
	}
	return os.Stat(name)
}

// Truncate mirrors os.Truncate.
func (f *FS) Truncate(name string, size int64) error {
	if err := f.check(OpTruncate, 0); err != nil {
		return &fs.PathError{Op: "truncate", Path: name, Err: err}
	}
	return os.Truncate(name, size)
}

// MkdirAll mirrors os.MkdirAll.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.check(OpMkdir, 0); err != nil {
		return &fs.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return os.MkdirAll(path, perm)
}

// faultFile applies the tag's fault to the per-handle operations. A
// torn write lands a short prefix before reporting the error, modeling
// power loss mid-write; recovery code must cope with the partial frame.
type faultFile struct {
	*os.File
	fs *FS
}

func (f *faultFile) injectWrite(b []byte, writePrefix func(p []byte) error) error {
	d := f.fs.plane.diskCheck(f.fs.tag, OpWrite, len(b))
	if d.err == nil {
		return nil
	}
	if d.torn && d.tornLen > 0 {
		// Best-effort prefix: the injected error wins regardless.
		_ = writePrefix(b[:d.tornLen])
	}
	return &fs.PathError{Op: "write", Path: f.File.Name(), Err: d.err}
}

func (f *faultFile) Write(b []byte) (int, error) {
	if err := f.injectWrite(b, func(p []byte) error {
		_, werr := f.File.Write(p)
		return werr
	}); err != nil {
		return 0, err
	}
	return f.File.Write(b)
}

func (f *faultFile) WriteAt(b []byte, off int64) (int, error) {
	if err := f.injectWrite(b, func(p []byte) error {
		_, werr := f.File.WriteAt(p, off)
		return werr
	}); err != nil {
		return 0, err
	}
	return f.File.WriteAt(b, off)
}

func (f *faultFile) Read(b []byte) (int, error) {
	if err := f.fs.check(OpRead, 0); err != nil {
		return 0, &fs.PathError{Op: "read", Path: f.File.Name(), Err: err}
	}
	return f.File.Read(b)
}

func (f *faultFile) ReadAt(b []byte, off int64) (int, error) {
	if err := f.fs.check(OpRead, 0); err != nil {
		return 0, &fs.PathError{Op: "read", Path: f.File.Name(), Err: err}
	}
	return f.File.ReadAt(b, off)
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.check(OpTruncate, 0); err != nil {
		return &fs.PathError{Op: "truncate", Path: f.File.Name(), Err: err}
	}
	return f.File.Truncate(size)
}
