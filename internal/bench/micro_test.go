package bench

import "testing"

// The gated hot-path benchmarks. CI runs them via `go test -bench` for
// human-readable numbers and via `bugnet-bench -json` for the regression
// gate; both drive the same operations.

func benchMicro(b *testing.B, name string) {
	b.Helper()
	for _, m := range micros() {
		if m.name != name {
			continue
		}
		op, err := m.setup()
		if err != nil {
			b.Fatal(err)
		}
		op()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op()
		}
		return
	}
	b.Fatalf("unknown micro %q", name)
}

// BenchmarkRecordHotPath measures the per-access record/replay
// bookkeeping — memory-image word load/store plus known/first-load set
// insert — over the live page-table/bitmap structures and the reference
// map-based implementations they replaced. One op is 4096 accesses.
func BenchmarkRecordHotPath(b *testing.B) {
	b.Run("paged", func(b *testing.B) { benchMicro(b, "RecordHotPath/paged") })
	b.Run("map", func(b *testing.B) { benchMicro(b, "RecordHotPath/map") })
}

// BenchmarkSnapshotRestore measures the replay checkpoint primitive: a
// full ReplayMachine Snapshot+Restore (copy-on-write) against the
// pre-refactor deep copy of the page map and known-word map.
func BenchmarkSnapshotRestore(b *testing.B) {
	b.Run("machine", func(b *testing.B) { benchMicro(b, "SnapshotRestore/machine") })
	b.Run("map", func(b *testing.B) { benchMicro(b, "SnapshotRestore/map") })
}

// BenchmarkStepVsRun measures the execution engines head to head over the
// same hot loop: the predecoded basic-block engine (cpu.Run) against the
// preserved switch interpreter (cpu.Step). One op is 4096 instructions.
func BenchmarkStepVsRun(b *testing.B) {
	b.Run("blocks", func(b *testing.B) { benchMicro(b, "StepVsRun/blocks") })
	b.Run("switch", func(b *testing.B) { benchMicro(b, "StepVsRun/switch") })
}

// BenchmarkRecordPerInstr measures end-to-end recorded-phase ns per
// committed instruction (the README headline number).
func BenchmarkRecordPerInstr(b *testing.B) {
	benchMicro(b, "RecordPerInstr")
}

// BenchmarkRecordWindow measures the end-to-end record loop (simulator +
// recorder + stores) behind the backend experiment's overhead column.
// Wall-clock ns/op includes the untimed warmup; the recorded phase is
// reported separately as ns/recorded-instr (the gated quantity).
func BenchmarkRecordWindow(b *testing.B) {
	op, err := recordWindowMicro()
	if err != nil {
		b.Fatal(err)
	}
	op()
	b.ReportAllocs()
	b.ResetTimer()
	var measured int64
	for i := 0; i < b.N; i++ {
		measured += op().Nanoseconds()
	}
	b.ReportMetric(float64(measured)/float64(b.N)/recordWindowWindow, "ns/recorded-instr")
}

// TestMicroSuiteRuns smoke-tests the JSON-export path: every registered
// microbenchmark must set up, run, and report sane numbers.
func TestMicroSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmarks are not short")
	}
	results, err := RunMicros(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(MicroNames()) {
		t.Fatalf("got %d results for %d micros", len(results), len(MicroNames()))
	}
	for _, r := range results {
		if r.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v", r.Name, r.NsPerOp)
		}
	}
}

func TestRunMicroUnknown(t *testing.T) {
	if _, err := RunMicro("nope", 1, 1); err == nil {
		t.Fatal("unknown micro accepted")
	}
}
