package bench

// micro.go is the hot-path microbenchmark suite behind the CI benchmark
// gate: the per-access record/replay bookkeeping and the replay-machine
// snapshot/restore path, measured with a fixed iteration count so the
// numbers are comparable run-to-run and exportable as JSON
// (cmd/bugnet-bench -json).
//
// Each gated path is measured twice — once over the page-table/bitmap
// structures the system actually uses, and once over reference map-based
// implementations preserved here from the pre-refactor design — so the
// claimed speedup (paged vs map) is re-established on every CI run on the
// same machine, independent of runner speed, while the committed JSON
// baseline catches absolute regressions.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/fll"
	"bugnet/internal/mem"
	"bugnet/internal/parreplay"
	"bugnet/internal/workload"
)

// MicroResult is one microbenchmark measurement, mirroring the fields of
// a `go test -bench -benchmem` line.
type MicroResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// micro is one registered microbenchmark: setup builds state and returns
// the operation to measure. An op reports the duration of its *measured
// phase* — for most micros that is its whole body, but an op may exclude
// untimed scaffolding (RecordWindow excludes the unrecorded warmup), so
// the exported ns/op means what the benchmark name claims.
type micro struct {
	name  string
	setup func() (op func() time.Duration, err error)
}

// hotPathOps is the number of simulated accesses per RecordHotPath op.
const hotPathOps = 4096

// hotPathPages is the working-set size in pages; large enough that the
// access stride keeps crossing page boundaries.
const hotPathPages = 64

const hotPathBase = uint32(0x1000_0000)

// hotAddr is the shared access pattern: a 68-byte stride (word-aligned,
// page-crossing) over the working set, every fourth access a store.
func hotAddr(i int) (addr uint32, store bool) {
	off := uint32(i*68) % (hotPathPages * mem.PageSize)
	return hotPathBase + (off &^ 3), i&3 == 3
}

// pagedHotPath measures the per-access bookkeeping of the live design:
// page-table memory image plus the page-granular known/first-load bitmap.
func pagedHotPath() (func() time.Duration, error) {
	m := mem.New()
	m.Map(hotPathBase, hotPathPages*mem.PageSize)
	known := mem.NewKnownSet()
	sink := uint32(0)
	return func() time.Duration {
		start := time.Now()
		for i := 0; i < hotPathOps; i++ {
			addr, store := hotAddr(i)
			if store {
				if err := m.StoreWord(addr, sink); err != nil {
					panic(err)
				}
			} else {
				v, err := m.LoadWord(addr)
				if err != nil {
					panic(err)
				}
				sink += v
			}
			known.Add(addr)
		}
		return time.Since(start)
	}, nil
}

// --- reference map-based implementations (the pre-refactor design) ---

// mapMemory is the original map-backed guest memory: one hash lookup per
// access, deep-copied page maps on snapshot.
type mapMemory struct {
	pages map[uint32]*mem.Page
}

func newMapMemory() *mapMemory { return &mapMemory{pages: make(map[uint32]*mem.Page)} }

func (m *mapMemory) mapRange(addr, size uint32) {
	first := addr >> mem.PageShift
	last := (addr + size - 1) >> mem.PageShift
	for p := first; p <= last; p++ {
		if _, ok := m.pages[p]; !ok {
			m.pages[p] = new(mem.Page)
		}
	}
}

func (m *mapMemory) loadWord(addr uint32) uint32 {
	p := m.pages[addr>>mem.PageShift]
	o := addr & (mem.PageSize - 1)
	return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
}

func (m *mapMemory) storeWord(addr uint32, v uint32) {
	p := m.pages[addr>>mem.PageShift]
	o := addr & (mem.PageSize - 1)
	p[o] = byte(v)
	p[o+1] = byte(v >> 8)
	p[o+2] = byte(v >> 16)
	p[o+3] = byte(v >> 24)
}

// snapshot is the original deep copy: a fresh map with copied pages.
func (m *mapMemory) snapshot() *mapMemory {
	s := newMapMemory()
	for n, p := range m.pages {
		cp := *p
		s.pages[n] = &cp
	}
	return s
}

// cloneKnownMap is the original known-set copy: a word-address hash map
// rebuilt entry by entry.
func cloneKnownMap(known map[uint32]bool) map[uint32]bool {
	cp := make(map[uint32]bool, len(known))
	for a := range known {
		cp[a] = true
	}
	return cp
}

// mapHotPath measures the identical access pattern over the reference
// map-based structures.
func mapHotPath() (func() time.Duration, error) {
	m := newMapMemory()
	m.mapRange(hotPathBase, hotPathPages*mem.PageSize)
	known := make(map[uint32]bool)
	sink := uint32(0)
	return func() time.Duration {
		start := time.Now()
		for i := 0; i < hotPathOps; i++ {
			addr, store := hotAddr(i)
			if store {
				m.storeWord(addr, sink)
			} else {
				sink += m.loadWord(addr)
			}
			known[addr] = true
		}
		return time.Since(start)
	}, nil
}

// warmedMachine records a gzip window and returns a known-tracking replay
// machine advanced to the middle of it — the state a debugger or
// time-travel engine checkpoints.
func warmedMachine() (*core.ReplayMachine, error) {
	w := workload.ByName("gzip")
	const window = 200_000
	m := w.Machine(w.Warmup, nil)
	m.Run()
	rec := core.NewRecorder(m, core.Config{IntervalLength: 10_000})
	m.SetMaxSteps(w.Warmup + window)
	m.Run()
	rec.Flush()
	if err := rec.Err(); err != nil {
		return nil, err
	}
	rep := rec.Report()
	logs := rep.FLLs[0]
	if len(logs) == 0 {
		return nil, fmt.Errorf("bench: gzip recording produced no thread-0 logs")
	}
	rm := core.NewReplayer(w.Image, logs).Machine(core.MachineOptions{TrackKnown: true})
	target := rm.Window() / 2
	for rm.Pos() < target && !rm.Done() {
		if err := rm.StepOne(); err != nil {
			return nil, err
		}
	}
	return rm, nil
}

// machineSnapshotRestore measures the real ReplayMachine checkpoint
// primitive (copy-on-write memory image + known bitmap + log cursors).
func machineSnapshotRestore() (func() time.Duration, error) {
	rm, err := warmedMachine()
	if err != nil {
		return nil, err
	}
	return func() time.Duration {
		start := time.Now()
		s := rm.Snapshot()
		rm.Restore(s)
		return time.Since(start)
	}, nil
}

// mapSnapshotRestore measures the pre-refactor checkpoint cost over the
// same replay state: deep-copying the memory image's page map and the
// known-word hash map, once for the snapshot and once for the restore.
func mapSnapshotRestore() (func() time.Duration, error) {
	rm, err := warmedMachine()
	if err != nil {
		return nil, err
	}
	img := newMapMemory()
	known := make(map[uint32]bool)
	for _, addr := range rm.KnownWords() {
		known[addr] = true
		img.mapRange(addr, 4)
		v, _ := rm.ReadWord(addr)
		img.storeWord(addr, v)
	}
	return func() time.Duration {
		start := time.Now()
		snapMem := img.snapshot()
		snapKnown := cloneKnownMap(known)
		_ = snapMem.snapshot() // restore deep-copies out of the snapshot again
		_ = cloneKnownMap(snapKnown)
		return time.Since(start)
	}, nil
}

// --- execution-engine pair: predecoded blocks vs the switch interpreter ---

// stepVsRunInstr is the instruction count per StepVsRun op.
const stepVsRunInstr = 4096

// stepVsRunSrc is a representative hot loop: a checksum pass over a
// buffer — one load and one store per nine instructions, the rest ALU and
// a loop-closing branch — running forever so the op can execute a fixed
// instruction count from wherever the previous op left off.
const stepVsRunSrc = `
        .data
buf:    .space 1024
        .text
outer:  li   t0, 0
        li   t1, 256
        la   t2, buf
inner:  lw   t3, 0(t2)
        add  a0, a0, t3
        xor  a1, a1, a0
        srli t4, a0, 3
        add  a1, a1, t4
        sw   a1, 0(t2)
        addi t2, t2, 4
        addi t0, t0, 1
        blt  t0, t1, inner
        j    outer
`

// execEngineCPU builds a core over the StepVsRun program.
func execEngineCPU() (*cpu.CPU, error) {
	img, err := asm.Assemble("stepvsrun.s", stepVsRunSrc)
	if err != nil {
		return nil, err
	}
	m := mem.New()
	m.Map(img.TextBase, uint32(len(img.Text)))
	if err := m.StoreBytes(img.TextBase, img.Text); err != nil {
		return nil, err
	}
	m.Map(img.DataBase, mem.PageSize)
	if len(img.Data) > 0 {
		if err := m.StoreBytes(img.DataBase, img.Data); err != nil {
			return nil, err
		}
	}
	c := cpu.New(m)
	c.PC = img.Entry
	return c, nil
}

// blocksHotLoop measures the predecoded block engine (cpu.Run): the
// per-instruction cost with fetch, decode, dispatch selection and watch
// scanning amortized at predecode time.
func blocksHotLoop() (func() time.Duration, error) {
	c, err := execEngineCPU()
	if err != nil {
		return nil, err
	}
	return func() time.Duration {
		start := time.Now()
		n, ev := c.Run(stepVsRunInstr)
		if n != stepVsRunInstr || ev != cpu.EventStep {
			panic(fmt.Sprintf("bench: Run = (%d, %v)", n, ev))
		}
		return time.Since(start)
	}, nil
}

// switchHotLoop measures the preserved reference interpreter (cpu.Step):
// a fetch-cache probe, an isa.Decode and the full opcode switch per
// instruction.
func switchHotLoop() (func() time.Duration, error) {
	c, err := execEngineCPU()
	if err != nil {
		return nil, err
	}
	return func() time.Duration {
		start := time.Now()
		for i := 0; i < stepVsRunInstr; i++ {
			if ev := c.Step(); ev != cpu.EventStep {
				panic(fmt.Sprintf("bench: Step = %v", ev))
			}
		}
		return time.Since(start)
	}, nil
}

// --- parallel replay pair: interval fan-out vs one sequential pass ---

// parReplayWorkers is the fan-out of the gated ParallelReplay micro; the
// CI floor asserts >= 3x over the sequential twin at this width.
const parReplayWorkers = 8

// parReplayWindow/parReplayInterval size the recorded window: 16 equal
// checkpoint intervals — two rounds of units per worker, long enough that
// the fixed per-unit cost (fresh memory image, text copy, block
// re-predecode) stays a few percent of the interval's execution.
const (
	parReplayWindow   = 320_000
	parReplayInterval = 20_000
)

// parReplayState records the gzip window once and shares it between the
// ParallelReplay pair, so both sides replay the identical logs.
var parReplayState struct {
	once sync.Once
	img  *asm.Image
	logs []*fll.Ref
	err  error
}

func parReplayLogs() (*asm.Image, []*fll.Ref, error) {
	s := &parReplayState
	s.once.Do(func() {
		w := workload.ByName("gzip")
		m := w.Machine(w.Warmup, nil)
		m.Run()
		rec := core.NewRecorder(m, core.Config{IntervalLength: parReplayInterval})
		m.SetMaxSteps(w.Warmup + parReplayWindow)
		m.Run()
		rec.Flush()
		if s.err = rec.Err(); s.err != nil {
			return
		}
		logs := rec.Report().FLLs[0]
		if len(logs) < parReplayWorkers {
			s.err = fmt.Errorf("bench: only %d intervals recorded; the fan-out needs slack", len(logs))
			return
		}
		s.img, s.logs = w.Image, logs
	})
	return s.img, s.logs, s.err
}

// parallelReplayMicro measures the parreplay fan-out executor: the whole
// window replayed as independent per-interval units on a worker pool and
// merged in interval order.
func parallelReplayMicro() (func() time.Duration, error) {
	img, logs, err := parReplayLogs()
	if err != nil {
		return nil, err
	}
	o := parreplay.Options{Workers: parReplayWorkers}
	return func() time.Duration {
		start := time.Now()
		res, err := parreplay.ReplayThread(img, logs, o)
		if err != nil {
			panic(fmt.Sprintf("bench: parallel replay: %v", err))
		}
		if res.Instructions != parReplayWindow {
			panic(fmt.Sprintf("bench: parallel replay covered %d of %d instructions",
				res.Instructions, parReplayWindow))
		}
		return time.Since(start)
	}, nil
}

// sequentialReplayMicro is the reference twin: the same logs through one
// sequential Replayer pass, interval after interval.
func sequentialReplayMicro() (func() time.Duration, error) {
	img, logs, err := parReplayLogs()
	if err != nil {
		return nil, err
	}
	return func() time.Duration {
		start := time.Now()
		res, err := core.NewReplayer(img, logs).Run()
		if err != nil {
			panic(fmt.Sprintf("bench: sequential replay: %v", err))
		}
		if res.Instructions != parReplayWindow {
			panic(fmt.Sprintf("bench: sequential replay covered %d of %d instructions",
				res.Instructions, parReplayWindow))
		}
		return time.Since(start)
	}, nil
}

// recordWindowWindow is the recorded-phase length of the RecordWindow
// micro, in instructions.
const recordWindowWindow = 50_000

// recordPhaseOp returns an op running one end-to-end recorded gzip
// window — machine construction and the unrecorded warmup outside the
// measured span, then a timed recorded phase of recordWindowWindow
// instructions — reporting the recorded-phase duration and its committed
// instruction count. Both record-path micros share it, so they cannot
// drift apart. The workload lookup happens once, at setup.
func recordPhaseOp() func() (time.Duration, uint64) {
	w := workload.ByName("gzip")
	return func() (time.Duration, uint64) {
		m := w.Machine(w.Warmup, nil)
		warm := m.Run()
		rec := core.NewRecorder(m, core.Config{IntervalLength: 10_000})
		m.SetMaxSteps(w.Warmup + recordWindowWindow)
		start := time.Now()
		res := m.Run()
		rec.Flush()
		d := time.Since(start)
		instr := res.Instructions - warm.Instructions
		if instr == 0 {
			panic("bench: recorded phase executed no instructions")
		}
		return d, instr
	}
}

// recordWindowMicro measures the end-to-end record loop (simulator +
// recorder + log stores) over a 50K-instruction gzip window — the number
// behind the `backend` experiment's record-overhead column. Only the
// *recorded* phase is timed; machine construction and the unrecorded
// warmup run outside the measured span (they would otherwise dilute the
// record-path signal ~8:1 and hide regressions from the gate). B/op and
// allocs/op still cover the whole op, warmup included. It backs the
// BenchmarkRecordWindow ms/op figure; the *gated* export is
// RecordPerInstr, which measures the identical op per instruction —
// registering both would run the suite's most expensive workload twice
// for one signal.
func recordWindowMicro() (func() time.Duration, error) {
	op := recordPhaseOp()
	return func() time.Duration {
		d, _ := op()
		return d
	}, nil
}

// recordPerInstrMicro is the end-to-end ns/instr figure: the same
// recorded window as RecordWindow, but the op reports the duration *per
// committed instruction* of the recorded phase, so the exported ns/op is
// directly the "record loop ns/instr" number the README quotes and the
// CI gate tracks.
func recordPerInstrMicro() (func() time.Duration, error) {
	op := recordPhaseOp()
	return func() time.Duration {
		d, instr := op()
		// Round rather than truncate: at ~tens of ns/instr a floor would
		// cost up to 6% of the signal per op.
		return time.Duration((uint64(d) + instr/2) / instr)
	}, nil
}

// micros is the registered suite; the order is the report order.
func micros() []micro {
	return []micro{
		{"RecordHotPath/paged", pagedHotPath},
		{"RecordHotPath/map", mapHotPath},
		{"SnapshotRestore/machine", machineSnapshotRestore},
		{"SnapshotRestore/map", mapSnapshotRestore},
		{"StepVsRun/blocks", blocksHotLoop},
		{"StepVsRun/switch", switchHotLoop},
		{"ParallelReplay", parallelReplayMicro},
		{"ParallelReplay/seq", sequentialReplayMicro},
		{"RecordPerInstr", recordPerInstrMicro},
		{"ClusterIngest", clusterIngestMicro},
	}
}

// MicroNames lists the microbenchmark names in report order.
func MicroNames() []string {
	ms := micros()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.name
	}
	return names
}

// RunMicro measures one microbenchmark: rounds runs of iters iterations
// each, reporting the fastest round (standard benchmarking practice — the
// minimum is the least-noise estimate) with its allocation counts. GC is
// disabled around the measurement so pacing noise does not leak into
// small rounds.
func RunMicro(name string, iters, rounds int) (MicroResult, error) {
	if iters <= 0 {
		iters = 100
	}
	if rounds <= 0 {
		rounds = 3
	}
	for _, m := range micros() {
		if m.name != name {
			continue
		}
		op, err := m.setup()
		if err != nil {
			return MicroResult{}, fmt.Errorf("bench: %s setup: %w", name, err)
		}
		op() // warm caches and lazy allocations outside the measurement
		best := MicroResult{Name: name, Iters: iters}
		gc := debug.SetGCPercent(-1)
		defer debug.SetGCPercent(gc)
		for r := 0; r < rounds; r++ {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			var measured time.Duration
			for i := 0; i < iters; i++ {
				measured += op()
			}
			runtime.ReadMemStats(&m1)
			ns := float64(measured.Nanoseconds()) / float64(iters)
			if r == 0 || ns < best.NsPerOp {
				best.NsPerOp = ns
				best.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters)
				best.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(iters)
			}
		}
		return best, nil
	}
	return MicroResult{}, fmt.Errorf("bench: unknown microbenchmark %q (have %v)", name, MicroNames())
}

// RunMicros measures the whole suite in order.
func RunMicros(iters, rounds int) ([]MicroResult, error) {
	var out []MicroResult
	for _, name := range MicroNames() {
		r, err := RunMicro(name, iters, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
