package bench

import (
	"strconv"
	"strings"
	"testing"
)

// testScale keeps unit tests fast; the root-level benchmarks and the CLI
// run the meaningful scales.
const testScale = 2000

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Note("footnote %d", 7)
	s := tb.String()
	for _, want := range []string{"== x: demo ==", "333", "note: footnote 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFormatters(t *testing.T) {
	if kb(2048) != "2.0" || mb(3<<20) != "3.00" {
		t.Error("size formatters broken")
	}
	cases := map[uint64]string{10_000: "10K", 1_000_000: "1M", 1_000_000_000: "1B", 123: "123"}
	for n, want := range cases {
		if human(n) != want {
			t.Errorf("human(%d) = %s; want %s", n, human(n), want)
		}
	}
	if pct(0.5) != "50.0%" {
		t.Errorf("pct = %s", pct(0.5))
	}
}

func TestScaledFloors(t *testing.T) {
	if scaled(100, 1000) != 10 {
		t.Errorf("scaled floor = %d", scaled(100, 1000))
	}
	if scaled(paperBillion, 1) != paperBillion {
		t.Error("scale 1 must be identity")
	}
}

func TestFigure3ShapeMonotone(t *testing.T) {
	tb := Figure3(testScale)
	if len(tb.Rows) != 8 { // 7 workloads + Avg
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The paper's claim: FLL size decreases as interval length grows.
	// Check the Avg row is non-increasing (within 1% slack for ties).
	avg := tb.Rows[len(tb.Rows)-1]
	var prev float64 = -1
	for i := 1; i < len(avg); i++ {
		v, err := strconv.ParseFloat(avg[i], 64)
		if err != nil {
			t.Fatalf("bad cell %q", avg[i])
		}
		if prev >= 0 && v > prev*1.01 {
			t.Errorf("Figure 3 Avg not decreasing: %v", avg[1:])
			break
		}
		prev = v
	}
}

func TestFigure4ShapeIncreasing(t *testing.T) {
	tb := Figure4(testScale)
	avg := tb.Rows[len(tb.Rows)-1]
	var prev float64 = -1
	for i := 1; i < len(avg); i++ {
		v, _ := strconv.ParseFloat(avg[i], 64)
		if prev >= 0 && v < prev {
			t.Errorf("Figure 4 Avg not increasing: %v", avg[1:])
			break
		}
		prev = v
	}
}

func TestDictSweepShapes(t *testing.T) {
	fig5, fig6 := DictSweep(testScale)
	// Hit rate and ratio must not decrease with dictionary size, and the
	// 64-entry column should show meaningful compression on average.
	avg5 := fig5.Rows[len(fig5.Rows)-1]
	var prev float64 = -1
	for i := 1; i < len(avg5); i++ {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(avg5[i], "%"), 64)
		if prev >= 0 && v < prev-2 { // small non-monotonic jitter tolerated
			t.Errorf("Figure 5 Avg decreasing: %v", avg5[1:])
			break
		}
		prev = v
	}
	avg6 := fig6.Rows[len(fig6.Rows)-1]
	v64, _ := strconv.ParseFloat(avg6[4], 64) // the 64-entry column
	if v64 < 1.0 {
		t.Errorf("64-entry compression ratio = %v; want > 1", v64)
	}
}

func TestTable2HasAllPaperRows(t *testing.T) {
	tb := Table2(testScale)
	wantRows := []string{"FLL", "Memory race log", "Cache chk-pnt", "Mem chk-pnt",
		"Core dump", "Interrupt log", "Prg I/O log", "DMA log"}
	if len(tb.Rows) != len(wantRows) {
		t.Fatalf("rows = %d; want %d", len(tb.Rows), len(wantRows))
	}
	for i, want := range wantRows {
		if !strings.HasPrefix(tb.Rows[i][0], want) {
			t.Errorf("row %d = %q; want prefix %q", i, tb.Rows[i][0], want)
		}
	}
	// BugNet's 1B column must be larger than its 10M column.
	v10, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	v1b, _ := strconv.ParseFloat(tb.Rows[0][2], 64)
	if v1b < v10 {
		t.Errorf("FLL 1B (%v) < 10M (%v)", v1b, v10)
	}
	// FDR must carry a core dump; BugNet must not.
	if tb.Rows[4][1] != "NIL" || tb.Rows[4][3] == "NIL" {
		t.Error("core dump attribution wrong")
	}
}

func TestTable3Static(t *testing.T) {
	tb := Table3()
	s := tb.String()
	for _, want := range []string{"48.0", "1416.0", "64-entry CAM", "LZ HW"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, s)
		}
	}
}

func TestOverheadTiny(t *testing.T) {
	tb := Overhead(testScale)
	for _, row := range tb.Rows {
		ov := strings.TrimSuffix(row[len(row)-1], "%")
		v, err := strconv.ParseFloat(ov, 64)
		if err != nil {
			t.Fatalf("bad overhead cell %q", row[len(row)-1])
		}
		if v > 0.1 {
			t.Errorf("%s overhead = %v%%; paper claims < 0.01%%", row[0], v)
		}
	}
}

func TestAblationNetzerReduces(t *testing.T) {
	tb := AblationNetzer(testScale)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	with, _ := strconv.Atoi(tb.Rows[0][1])
	without, _ := strconv.Atoi(tb.Rows[1][1])
	if with >= without || without == 0 {
		t.Errorf("reduction ineffective: with=%d without=%d", with, without)
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("bogus", testScale); err == nil {
		t.Error("unknown id accepted")
	}
	tabs, err := ByID("table3", testScale)
	if err != nil || len(tabs) != 1 {
		t.Errorf("ByID(table3) = %v, %v", tabs, err)
	}
	for _, id := range IDs() {
		if id == "all" {
			continue
		}
		// All ids must at least be recognized (not all are cheap to run).
		switch id {
		case "table3":
			if _, err := ByID(id, testScale); err != nil {
				t.Errorf("ByID(%s): %v", id, err)
			}
		}
	}
}
