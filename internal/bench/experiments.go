package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bugnet/internal/bus"
	"bugnet/internal/core"
	"bugnet/internal/dict"
	"bugnet/internal/fdr"
	"bugnet/internal/logstore"
	"bugnet/internal/workload"
)

// DefaultScale divides the paper's instruction counts for all experiments
// unless the caller overrides it. 100 keeps the full suite within tens of
// seconds while preserving relative behaviour; scale 1 reproduces the
// paper's absolute window sizes.
const DefaultScale = 100

// paper's canonical parameters (§6).
const (
	paperInterval = 10_000_000    // checkpoint interval for the main results
	paperWindow   = 100_000_000   // Figure 3 replay window
	paperBillion  = 1_000_000_000 // FDR's one-second window
)

// clampScale normalizes a scale factor.
func clampScale(scale int) uint64 {
	if scale < 1 {
		scale = 1
	}
	return uint64(scale)
}

// scaled divides a paper count by the scale with a sane floor.
func scaled(paper uint64, scale int) uint64 {
	v := paper / clampScale(scale)
	if v < 10 {
		v = 10
	}
	return v
}

// recordWindow warms the workload up without recording, then records a
// steady-state window of the given length.
func recordWindow(w *workload.Workload, window uint64, cfg core.Config) *core.Recorder {
	m := w.Machine(w.Warmup, nil)
	m.Run()
	rec := core.NewRecorder(m, cfg)
	m.SetMaxSteps(w.Warmup + window)
	m.Run()
	rec.Flush()
	return rec
}

// fllBytes sums the retained First-Load Log sizes of every thread.
func fllBytes(rec *core.Recorder) int64 {
	return rec.FLLStore().Stats().RetainedBytes
}

// windowBytes returns the FLL bytes needed to replay the last `window`
// instructions of thread 0: logs are taken newest-first until their
// lengths cover the window, matching the paper's replay-window semantics.
func windowBytes(rec *core.Recorder, tid int, window uint64) int64 {
	items := rec.FLLStore().Thread(tid)
	var bytes int64
	var covered uint64
	for i := len(items) - 1; i >= 0 && covered < window; i-- {
		bytes += items[i].Bytes
		covered += items[i].Instructions
	}
	return bytes
}

// Table1 reproduces the bug-characteristics table: for every analogue, the
// paper's window and the window measured on our rebuilt defect.
func Table1(scale int) *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Open source programs with known bugs: root-cause to crash window",
		Header: []string{"Application", "Bug location (original)", "Bug description", "Paper window", "Target (scaled)", "Measured window"},
	}
	for _, b := range workload.Bugs(scale) {
		target := scaled(b.PaperWindow, scale)
		window, crashed := b.MeasureWindow(target*4 + 40_000_000)
		measured := "did not crash"
		if crashed {
			measured = fmt.Sprintf("%d", window)
		}
		name := b.Name
		if b.Multithreaded {
			name += " (MT)"
		}
		t.AddRow(name, b.PaperLocation, b.Description,
			fmt.Sprintf("%d", b.PaperWindow), fmt.Sprintf("%d", target), measured)
	}
	t.Note("windows scaled by 1/%d; paper finds all but ghostscript under 10M instructions", scale)
	return t
}

// Figure2 reproduces the per-bug FLL sizes: the log bytes needed to replay
// each bug's window, recorded with the paper's 10M (scaled) interval.
func Figure2(scale int) *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "FLL size (KB) to replay each Table 1 bug window (10M-instruction checkpoint interval)",
		Header: []string{"Application", "Measured window", "FLL KB"},
	}
	interval := scaled(paperInterval, scale)
	for _, b := range workload.Bugs(scale) {
		target := scaled(b.PaperWindow, scale)
		window, crashed := b.MeasureWindow(target*4 + 40_000_000)
		if !crashed {
			t.AddRow(b.Name, "-", "did not crash")
			continue
		}
		kcfg := b.Kernel
		kcfg.MaxSteps = target*4 + 40_000_000
		res, _, rec := core.Record(b.Image, kcfg, core.Config{IntervalLength: interval})
		if res.Crash == nil {
			t.AddRow(b.Name, "-", "did not crash under recording")
			continue
		}
		bytes := windowBytes(rec, res.Crash.TID, window)
		t.AddRow(b.Name, fmt.Sprintf("%d", window), kb(bytes))
	}
	t.Note("paper: most bugs below 100 KB, worst case ≈1 MB (ghostscript/tidy/xv class)")
	return t
}

// Figure3 reproduces the interval-length sweep: total FLL size for a fixed
// replay window, at checkpoint interval lengths from 10K to 100M (scaled).
func Figure3(scale int) *Table {
	intervals := []uint64{10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}
	window := scaled(paperWindow, scale)
	t := &Table{
		ID:    "fig3",
		Title: fmt.Sprintf("Total FLL KB to replay %s instructions vs checkpoint interval length", human(window)),
	}
	t.Header = []string{"Workload"}
	for _, iv := range intervals {
		t.Header = append(t.Header, human(scaled(iv, scale)))
	}
	sums := make([]int64, len(intervals))
	for _, w := range workload.SPEC() {
		row := []string{w.Name}
		for i, iv := range intervals {
			rec := recordWindow(w, window, core.Config{IntervalLength: scaled(iv, scale)})
			b := fllBytes(rec)
			sums[i] += b
			row = append(row, kb(b))
		}
		t.AddRow(row...)
	}
	avg := []string{"Avg"}
	for _, s := range sums {
		avg = append(avg, kb(s/int64(len(workload.SPEC()))))
	}
	t.AddRow(avg...)
	t.Note("paper Figure 3: FLL size decreases monotonically with interval length")
	return t
}

// Figure4 reproduces the replay-window sweep: FLL bytes to replay 10M,
// 100M and 1B instructions at the 10M checkpoint interval (scaled). One
// recording of the longest window serves all three points, exactly like
// retaining a longer log history.
func Figure4(scale int) *Table {
	windows := []uint64{10_000_000, 100_000_000, 1_000_000_000}
	interval := scaled(paperInterval, scale)
	t := &Table{
		ID:    "fig4",
		Title: "Total FLL KB vs replay window length (10M-instruction checkpoint interval)",
	}
	t.Header = []string{"Workload"}
	for _, wd := range windows {
		t.Header = append(t.Header, human(scaled(wd, scale)))
	}
	sums := make([]int64, len(windows))
	for _, w := range workload.SPEC() {
		longest := scaled(windows[len(windows)-1], scale)
		rec := recordWindow(w, longest, core.Config{IntervalLength: interval})
		row := []string{w.Name}
		for i, wd := range windows {
			b := windowBytes(rec, 0, scaled(wd, scale))
			sums[i] += b
			row = append(row, kb(b))
		}
		t.AddRow(row...)
	}
	avg := []string{"Avg"}
	for _, s := range sums {
		avg = append(avg, kb(s/int64(len(workload.SPEC()))))
	}
	t.AddRow(avg...)
	t.Note("paper Figure 4: ≈225 KB for 10M and ≈18.86 MB for 1B instructions on average")
	return t
}

// DictSweep runs the dictionary-size sweep once and renders both Figure 5
// (hit percentage) and Figure 6 (compression ratio).
func DictSweep(scale int) (fig5, fig6 *Table) {
	sizes := []int{8, 16, 32, 64, 128, 256, 1024}
	window := scaled(paperInterval, scale) // one checkpoint interval's worth
	fig5 = &Table{
		ID:     "fig5",
		Title:  "Percent of logged load values found in the dictionary vs dictionary size",
		Header: []string{"Workload"},
	}
	fig6 = &Table{
		ID:     "fig6",
		Title:  "FLL compression ratio vs dictionary size",
		Header: []string{"Workload"},
	}
	for _, n := range sizes {
		fig5.Header = append(fig5.Header, fmt.Sprintf("%d", n))
		fig6.Header = append(fig6.Header, fmt.Sprintf("%d", n))
	}
	hitSums := make([]float64, len(sizes))
	ratioSums := make([]float64, len(sizes))
	for _, w := range workload.SPEC() {
		row5 := []string{w.Name}
		row6 := []string{w.Name}
		for i, n := range sizes {
			rec := recordWindow(w, window, core.Config{
				IntervalLength: scaled(paperInterval, scale),
				DictSize:       n,
			})
			hit := rec.DictStats(0).HitRate()
			hitSums[i] += hit
			row5 = append(row5, pct(hit))

			var unc, comp uint64
			for _, logs := range rec.Report().FLLs {
				for _, l := range logs {
					unc += l.UncompressedBits
					comp += l.EntryBits
				}
			}
			ratio := 1.0
			if comp > 0 {
				ratio = float64(unc) / float64(comp)
			}
			ratioSums[i] += ratio
			row6 = append(row6, fmt.Sprintf("%.2f", ratio))
		}
		fig5.AddRow(row5...)
		fig6.AddRow(row6...)
	}
	avg5 := []string{"Avg"}
	avg6 := []string{"Avg"}
	for i := range sizes {
		avg5 = append(avg5, pct(hitSums[i]/float64(len(workload.SPEC()))))
		avg6 = append(avg6, fmt.Sprintf("%.2f", ratioSums[i]/float64(len(workload.SPEC()))))
	}
	fig5.AddRow(avg5...)
	fig6.AddRow(avg6...)
	fig5.Note("paper Figure 5: a 64-entry dictionary captures ≈50%% of load values on average")
	fig6.Note("paper Figure 6: ≈2x compression with the 64-entry dictionary, growing with size")
	return fig5, fig6
}

// Table2 reproduces the log-size comparison between BugNet (10M and 1B
// windows) and FDR (1B window), averaged over the SPEC analogues.
func Table2(scale int) *Table {
	interval := scaled(paperInterval, scale)
	win10M := scaled(paperInterval, scale)
	win1B := scaled(paperBillion, scale)
	// FDR checkpoints every 1/3 "second" ≈ paperBillion/3 steps.
	fdrInterval := scaled(paperBillion/3, scale)

	specs := workload.SPEC()
	var bn10, bn1b int64
	var f fdr.SizeReport
	for _, w := range specs {
		rec := recordWindow(w, win1B, core.Config{IntervalLength: interval})
		bn10 += windowBytes(rec, 0, win10M)
		bn1b += windowBytes(rec, 0, win1B)

		m := w.Machine(w.Warmup, nil)
		m.Run()
		frec := fdr.NewRecorder(m, fdr.Config{IntervalSteps: fdrInterval})
		m.SetMaxSteps(w.Warmup + win1B)
		m.Run()
		frec.Finalize()
		s := frec.Sizes()
		f.CacheCheckpointBytes += s.CacheCheckpointBytes
		f.MemCheckpointBytes += s.MemCheckpointBytes
		f.InterruptBytes += s.InterruptBytes
		f.InputBytes += s.InputBytes
		f.DMABytes += s.DMABytes
		f.MRLBytes += s.MRLBytes
		f.CoreDumpBytes += s.CoreDumpBytes
	}
	n := int64(len(specs))
	bn10 /= n
	bn1b /= n

	t := &Table{
		ID:    "table2",
		Title: fmt.Sprintf("Log sizes, BugNet vs FDR (averaged over %d workloads, scale 1/%d)", n, scale),
		Header: []string{"Log", fmt.Sprintf("BugNet:%s", human(win10M)),
			fmt.Sprintf("BugNet:%s", human(win1B)), fmt.Sprintf("FDR:%s", human(win1B))},
	}
	t.AddRow("FLL (KB)", kb(bn10), kb(bn1b), "NIL")
	t.AddRow("Memory race log", "=FDR", "=FDR", kb(f.MRLBytes/n))
	t.AddRow("Cache chk-pnt log (KB)", "NIL", "NIL", kb(f.CacheCheckpointBytes/n))
	t.AddRow("Mem chk-pnt log (KB)", "NIL", "NIL", kb(f.MemCheckpointBytes/n))
	t.AddRow("Core dump (MB)", "NIL", "NIL", mb(f.CoreDumpBytes/n))
	t.AddRow("Interrupt log (KB)", "NIL", "NIL", kb(f.InterruptBytes/n))
	t.AddRow("Prg I/O log (KB)", "NIL", "NIL", kb(f.InputBytes/n))
	t.AddRow("DMA log (KB)", "NIL", "NIL", kb(f.DMABytes/n))
	t.Note("paper Table 2: FLL 225 KB (10M) / 18.86 MB (1B); FDR needs 18 MB of checkpoint logs + 2 MB races + up-to-GB core dump")
	t.Note("the SPEC analogues are single-threaded, so both systems' race logs are empty here; see the ablation-netzer experiment for MRL sizes")
	return t
}

// Table3 reproduces the hardware-complexity comparison. The FDR column is
// the configuration its paper describes; the BugNet column derives from
// this implementation's configuration constants.
func Table3() *Table {
	cbBytes := 16 << 10
	mrbBytes := 32 << 10
	t := &Table{
		ID:     "table3",
		Title:  "Hardware complexity, BugNet vs FDR",
		Header: []string{"Structure", "BugNet:10M", "BugNet:1B", "FDR:1B"},
	}
	t.AddRow("Checkpoint buffer (CB)", kb(int64(cbBytes)), kb(int64(cbBytes)), "NIL")
	t.AddRow("Memory race buffer (MRB)", kb(int64(mrbBytes)), kb(int64(mrbBytes)), kb(32<<10))
	t.AddRow("Compressor", "64-entry CAM", "64-entry CAM", "LZ HW")
	t.AddRow("Chk-pnt interval", "10M instr", "10M instr", "1/3 sec")
	t.AddRow("Cache chk-pnt buffer", "NIL", "NIL", kb(1024<<10))
	t.AddRow("Mem chk-pnt buffer", "NIL", "NIL", kb(256<<10))
	t.AddRow("Interrupt buffer", "NIL", "NIL", kb(64<<10))
	t.AddRow("Input buffer", "NIL", "NIL", kb(8<<10))
	t.AddRow("DMA buffer", "NIL", "NIL", kb(32<<10))
	t.AddRow("Total HW area (KB)", kb(int64(cbBytes+mrbBytes)), kb(int64(cbBytes+mrbBytes)), kb(1416<<10))
	t.Note("paper Table 3: BugNet 48 KB total vs FDR 1416 KB; sizes independent of the replay window because logs are memory backed")
	return t
}

// Overhead reproduces the §6.3 performance-overhead measurement with the
// bus model: recording overhead as a fraction of execution cycles.
func Overhead(scale int) *Table {
	window := scaled(paperWindow, scale)
	t := &Table{
		ID:     "overhead",
		Title:  "Recording overhead (bus model: logs drain on idle bus cycles; stall only on CB overflow)",
		Header: []string{"Workload", "Cycles", "Log KB", "Peak CB bytes", "Overhead"},
	}
	for _, w := range workload.SPEC() {
		model := bus.New(bus.Config{})
		recordWindow(w, window, core.Config{
			IntervalLength: scaled(paperInterval, scale),
			Bus:            model,
		})
		s := model.Stats()
		t.AddRow(w.Name, fmt.Sprintf("%d", s.Cycles), kb(int64(s.LogBytes)),
			fmt.Sprintf("%d", s.PeakCBBytes), fmt.Sprintf("%.4f%%", s.Overhead()*100))
	}
	t.Note("paper §6.3: overhead below 0.01%% for the SPEC programs")
	return t
}

// AblationPreserveFL measures the paper's §4.4 future-work scheme: keeping
// first-load bits across checkpoint boundaries, on an interrupt-heavy run.
func AblationPreserveFL(scale int) *Table {
	window := scaled(paperWindow, scale)
	interval := scaled(paperInterval, scale)
	timer := window / 50 // frequent context switches
	t := &Table{
		ID:     "ablation-preservefl",
		Title:  "FLL bytes with and without preserving FL bits across interval boundaries (timer-heavy run)",
		Header: []string{"Workload", "Baseline KB", "PreserveFL KB", "Reduction"},
	}
	for _, w := range workload.SPEC() {
		wt := *w
		wt.Kernel.TimerInterval = timer
		base := recordWindow(&wt, window, core.Config{IntervalLength: interval})
		pres := recordWindow(&wt, window, core.Config{IntervalLength: interval, PreserveFLBits: true})
		b0, b1 := fllBytes(base), fllBytes(pres)
		red := 0.0
		if b0 > 0 {
			red = 1 - float64(b1)/float64(b0)
		}
		t.AddRow(w.Name, kb(b0), kb(b1), pct(red))
	}
	t.Note("the paper defers this scheme to future work (§4.4); replay correctness is covered by tests")
	return t
}

// AblationNetzer measures the Memory Race Log with and without Netzer's
// transitive reduction on the multithreaded sharing workload.
func AblationNetzer(scale int) *Table {
	window := scaled(paperWindow, scale)
	interval := scaled(paperInterval, scale)
	t := &Table{
		ID:     "ablation-netzer",
		Title:  "MRL size with and without Netzer transitive reduction (mtshare, 2 cores)",
		Header: []string{"Config", "MRL entries", "MRL KB"},
	}
	w := workload.MTShare()
	for _, off := range []bool{false, true} {
		rec := recordWindow(w, window, core.Config{
			IntervalLength: interval,
			DisableNetzer:  off,
		})
		name := "with reduction"
		if off {
			name = "without reduction"
		}
		t.AddRow(name, fmt.Sprintf("%d", mrlEntries(rec)), kb(rec.MRLStore().Stats().RetainedBytes))
	}
	t.Note("FDR and BugNet both assume this optimization (paper §4.6.3)")
	return t
}

// mrlEntries counts retained MRL entries (from view metadata; the logs
// stay encoded).
func mrlEntries(rec *core.Recorder) int {
	n := 0
	for _, logs := range rec.Report().MRLs {
		for _, l := range logs {
			n += int(l.NumEntries)
		}
	}
	return n
}

// AblationDictGeometry explores dictionary design choices the paper fixes
// without evaluation: the saturating-counter width and the tie-breaking
// insertion policy (both §4.3.1). Run on the value-diverse vpr kernel,
// where replacement decisions matter most.
func AblationDictGeometry(scale int) *Table {
	window := scaled(paperInterval, scale)
	t := &Table{
		ID:     "ablation-dict",
		Title:  "Dictionary geometry: counter width and insertion policy (vpr, 64 entries)",
		Header: []string{"Geometry", "Hit rate", "FLL KB"},
	}
	w := workload.ByName("vpr")
	for _, g := range []struct {
		name string
		opts dict.Options
	}{
		{"1-bit counters", dict.Options{CounterBits: 1}},
		{"3-bit counters (paper)", dict.Options{CounterBits: 3}},
		{"6-bit counters", dict.Options{CounterBits: 6}},
		{"3-bit, insert at top", dict.Options{CounterBits: 3, InsertAtTop: true}},
	} {
		rec := recordWindow(w, window, core.Config{
			IntervalLength: scaled(paperInterval, scale),
			DictOptions:    g.opts,
		})
		t.AddRow(g.name, pct(rec.DictStats(0).HitRate()), kb(fllBytes(rec)))
	}
	t.Note("the paper fixes 3-bit counters and bottom-insertion; replay must mirror the choice")
	t.Note("finding: with near-uniform value alphabets the geometry barely matters — the paper's minimal 3-bit/bottom-insert design is not leaving compression on the table")
	return t
}

// BackendCompare measures the spill-to-disk log retention against the
// in-memory region at recording time: the replay window each backend
// sustains under its budget, and the record-path overhead the disk
// segments add. The memory row's budget stands in for a capped heap; the
// disk rows show (a) parity at an equal budget — identical retention
// decisions, so a report packed from either backend is byte-identical —
// and (b) the window a disk budget several times the heap cap retains,
// which the memory region cannot hold (paper §4.7 at disk scale).
func BackendCompare(scale int) *Table {
	window := scaled(paperWindow, scale)
	interval := scaled(paperInterval, scale) / 10
	if interval < 10 {
		interval = 10
	}
	w := workload.ByName("gzip")

	// Size the heap cap to force eviction: record once unbudgeted to learn
	// the full window's FLL bytes, then cap at a quarter of it.
	probe := recordWindow(w, window, core.Config{IntervalLength: interval})
	full := probe.FLLStore().Stats().RetainedBytes
	heapCap := full / 4
	if heapCap < 1 {
		heapCap = 1
	}

	t := &Table{
		ID:     "backend",
		Title:  fmt.Sprintf("Log retention backends at recording time (gzip, %s-instruction run, FLL budgets vs %s full window)", human(window), kb(full)+" KB"),
		Header: []string{"Backend", "Budget KB", "Replay window", "Retained KB", "Encoded KB", "Evicted logs", "Record ns/instr"},
	}

	type cfgRow struct {
		name   string
		budget int64
		disk   bool
	}
	rows := []cfgRow{
		{"memory (capped heap)", heapCap, false},
		{"disk segments", heapCap, true},
		{"disk segments", heapCap * 8, true},
	}
	var windows []uint64
	for _, r := range rows {
		// One closure per row so the deferred cleanup runs on every exit
		// path, including the error rows.
		func() {
			cfg := core.Config{IntervalLength: interval, FLLBudget: r.budget, MRLBudget: r.budget}
			if r.disk {
				dir, err := os.MkdirTemp("", "bugnet-bench-backend-*")
				if err != nil {
					t.AddRow(r.name, "-", "-", "-", "-", "-", "error: "+err.Error())
					return
				}
				defer os.RemoveAll(dir)
				fb, err := logstore.OpenDisk(filepath.Join(dir, "fll"), logstore.DiskOptions{})
				if err != nil {
					t.AddRow(r.name, "-", "-", "-", "-", "-", "error: "+err.Error())
					return
				}
				fs, err := logstore.Open(r.budget, fb)
				if err != nil {
					fb.Close()
					t.AddRow(r.name, "-", "-", "-", "-", "-", "error: "+err.Error())
					return
				}
				defer fs.Close()
				cfg.FLLStore = fs
			}
			// Time the recorded phase only — the unrecorded warmup must not
			// dilute the overhead figure this experiment exists to measure.
			m := w.Machine(w.Warmup, nil)
			m.Run()
			rec := core.NewRecorder(m, cfg)
			m.SetMaxSteps(w.Warmup + window)
			start := time.Now()
			m.Run()
			rec.Flush()
			elapsed := time.Since(start)
			st := rec.FLLStore().Stats()
			win := rec.FLLStore().ReplayWindow(0)
			windows = append(windows, win)
			nsPerInstr := float64(elapsed.Nanoseconds()) / float64(window)
			t.AddRow(r.name, kb(r.budget), human(win), kb(st.RetainedBytes),
				kb(st.RetainedEncodedBytes), fmt.Sprintf("%d", st.EvictedCount),
				fmt.Sprintf("%.1f", nsPerInstr))
		}()
	}
	if len(windows) == 3 {
		if windows[0] == windows[1] {
			t.Note("equal budgets retain identical windows (%s = %s): the backends share eviction semantics, so packed reports are byte-identical", human(windows[0]), human(windows[1]))
		} else {
			t.Note("RETENTION MISMATCH: memory retained %s but disk retained %s at the same budget — the backends' eviction semantics have diverged", human(windows[0]), human(windows[1]))
		}
		t.Note("the 8x disk budget sustains a %s-instruction window the capped heap cannot retain", human(windows[2]))
	}
	t.Note("record-path overhead is the whole simulation loop including the backend's segment writes")
	return t
}

// All runs every experiment at the given scale in paper order.
func All(scale int) []*Table {
	fig5, fig6 := DictSweep(scale)
	return []*Table{
		Table1(scale),
		Figure2(scale),
		Figure3(scale),
		Figure4(scale),
		fig5,
		fig6,
		Table2(scale),
		Table3(),
		Overhead(scale),
		AblationPreserveFL(scale),
		AblationNetzer(scale),
		AblationDictGeometry(scale),
		BackendCompare(scale),
	}
}

// ByID runs one experiment by its id.
func ByID(id string, scale int) ([]*Table, error) {
	switch id {
	case "table1":
		return []*Table{Table1(scale)}, nil
	case "fig2":
		return []*Table{Figure2(scale)}, nil
	case "fig3":
		return []*Table{Figure3(scale)}, nil
	case "fig4":
		return []*Table{Figure4(scale)}, nil
	case "fig5", "fig6", "dict":
		f5, f6 := DictSweep(scale)
		return []*Table{f5, f6}, nil
	case "table2":
		return []*Table{Table2(scale)}, nil
	case "table3":
		return []*Table{Table3()}, nil
	case "overhead":
		return []*Table{Overhead(scale)}, nil
	case "ablation-preservefl":
		return []*Table{AblationPreserveFL(scale)}, nil
	case "ablation-netzer":
		return []*Table{AblationNetzer(scale)}, nil
	case "ablation-dict":
		return []*Table{AblationDictGeometry(scale)}, nil
	case "backend":
		return []*Table{BackendCompare(scale)}, nil
	case "all":
		return All(scale), nil
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", id)
}

// IDs lists the available experiment identifiers.
func IDs() []string {
	return []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table2", "table3", "overhead",
		"ablation-preservefl", "ablation-netzer", "ablation-dict", "backend", "all"}
}
