// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns a Table whose rows mirror the
// paper's presentation; DESIGN.md §4 maps experiment ids to paper
// artifacts and EXPERIMENTS.md records measured-vs-paper results.
//
// Experiments accept a scale factor: paper instruction counts (checkpoint
// interval lengths, replay windows) are divided by it. Scale 1 reproduces
// the paper's absolute sizes; the default scales keep laptop runtimes
// reasonable while preserving every relative claim.
package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // experiment id, e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends an explanatory footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// kb formats a byte count in KB with one decimal, like the paper's
// figures.
func kb(bytes int64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/1024)
}

// mb formats a byte count in MB with two decimals.
func mb(bytes int64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/(1<<20))
}

// human formats an instruction count the way the paper labels its axes
// (10K, 1M, 1B).
func human(n uint64) string {
	switch {
	case n >= 1_000_000_000 && n%1_000_000_000 == 0:
		return fmt.Sprintf("%dB", n/1_000_000_000)
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// pct formats a fraction as a percentage.
func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}
