package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"bugnet/internal/cluster"
	"bugnet/internal/loadgen"
	"bugnet/internal/triage"
)

// clusterTeardown collects cleanups for resources a micro's setup pins
// (the in-process cluster and its store dirs); ReleaseResources runs them.
var (
	clusterTeardownMu sync.Mutex
	clusterTeardowns  []func()
)

// ReleaseResources tears down any long-lived state benchmark setups
// created (in-process cluster nodes, temp store dirs). cmd/bugnet-bench
// defers it; safe to call multiple times.
func ReleaseResources() {
	clusterTeardownMu.Lock()
	fns := clusterTeardowns
	clusterTeardowns = nil
	clusterTeardownMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// clusterIngestMicro measures one coordinated ingest into a 3-node
// in-process cluster (replication 3, quorum 2): admission, spool + hash,
// ring placement, two loopback replica forwards, local adoption, quorum
// accounting. After the first round every post is a byte-identical
// duplicate — deliberately so: steady-state fleet ingest is dominated by
// recurring crashes (the dedupe case BugNet's content addressing exists
// for), and the duplicate path still walks the full coordinator fan-out.
func clusterIngestMicro() (func() time.Duration, error) {
	reg := triage.NewImageRegistry()
	corpus, err := loadgen.Corpus(4, reg)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "bugnet-bench-cluster-")
	if err != nil {
		return nil, err
	}
	lc, err := cluster.SpawnLocal(3, cluster.SpawnOptions{
		BaseDir:     dir,
		Resolver:    reg.Resolve,
		Replication: 3,
		WriteQuorum: 2,
		Workers:     1,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	clusterTeardownMu.Lock()
	clusterTeardowns = append(clusterTeardowns, func() {
		lc.Close()
		os.RemoveAll(dir)
	})
	clusterTeardownMu.Unlock()

	urls := lc.URLs()
	client := &http.Client{Timeout: 30 * time.Second}
	seq := 0
	return func() time.Duration {
		target := urls[seq%len(urls)]
		blob := corpus[seq%len(corpus)]
		seq++
		t0 := time.Now()
		resp, err := client.Post(target+"/api/v1/reports", "application/octet-stream", bytes.NewReader(blob))
		if err != nil {
			panic(fmt.Sprintf("bench: cluster ingest: %v", err))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("bench: cluster ingest: %s", resp.Status))
		}
		return time.Since(t0)
	}, nil
}
