package bugnet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"bugnet/internal/triage"
	"bugnet/internal/workload"
)

// TestRecordSubmitTriageRoundTrip is the full fleet pipeline of paper
// §4.8 in one test: record a Table 1 bug analogue crashing, pack the
// report into a single archive, upload it to an in-process bugnet-serve
// handler, and check that automatic triage replays the window and
// reproduces the crash — same fault cause, same faulting PC. A second
// upload of the same report must deduplicate into the existing bucket
// (count=2) while storing one payload.
func TestRecordSubmitTriageRoundTrip(t *testing.T) {
	const scale = 100
	b := workload.BugByName("gzip", scale)
	if b == nil {
		t.Fatal("gzip analogue missing")
	}

	// Customer site: the recorder observes the crash.
	kcfg := b.Kernel
	kcfg.MaxSteps = 10_000_000
	res, rep, _ := Record(b.Image, kcfg, Config{IntervalLength: 50_000})
	if res.Crash == nil {
		t.Fatal("gzip analogue did not crash")
	}
	blob, err := PackReport(rep)
	if err != nil {
		t.Fatalf("PackReport: %v", err)
	}

	// Developer side: a triage service provisioned with the fleet's
	// binaries, behind the real HTTP handler.
	reg := triage.NewImageRegistry()
	for _, bug := range workload.Bugs(scale) {
		reg.Register(bug.Image)
	}
	svc, err := triage.New(triage.Config{Dir: t.TempDir(), Workers: 2, Resolver: reg.Resolve})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := httptest.NewServer(triage.NewHandler(svc))
	defer srv.Close()

	upload := func() triage.IngestResult {
		resp, err := http.Post(srv.URL+"/reports", "application/octet-stream", bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ing triage.IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
			t.Fatal(err)
		}
		return ing
	}

	first := upload()
	if first.Duplicate {
		t.Fatal("first upload marked duplicate")
	}
	if first.ID != ReportID(blob) {
		t.Errorf("server id %s, content address %s", first.ID, ReportID(blob))
	}
	second := upload()
	if !second.Duplicate || second.ID != first.ID || second.BucketKey != first.BucketKey {
		t.Fatalf("second upload: %+v vs %+v", second, first)
	}

	svc.WaitIdle()

	// The triage verdict must reproduce the recorded crash exactly.
	m, ok := svc.Report(first.ID)
	if !ok || m.Verdict == nil {
		t.Fatalf("no verdict for %s", first.ID)
	}
	v := m.Verdict
	if v.State != triage.VerdictDone {
		t.Fatalf("verdict state %q (error %q)", v.State, v.Error)
	}
	if !v.Reproduced || !v.MatchesReported {
		t.Fatalf("crash not reproduced: %+v", v)
	}
	if v.PC != res.Crash.Fault.PC {
		t.Errorf("triage pc %#x, recorded %#x", v.PC, res.Crash.Fault.PC)
	}
	if v.Cause != res.Crash.Fault.Cause.String() {
		t.Errorf("triage cause %q, recorded %q", v.Cause, res.Crash.Fault.Cause)
	}
	if len(v.Backtrace) == 0 || v.Backtrace[len(v.Backtrace)-1].PC != res.Crash.Fault.PC {
		t.Errorf("backtrace does not end at the faulting instruction: %+v", v.Backtrace)
	}

	// Deduplication: one bucket with count 2, one stored payload.
	buckets := svc.Buckets()
	if len(buckets) != 1 {
		t.Fatalf("%d buckets, want 1", len(buckets))
	}
	if buckets[0].Count != 2 {
		t.Errorf("bucket count %d, want 2", buckets[0].Count)
	}
	if st := svc.Store().Stats(); st.RetainedCount != 1 {
		t.Errorf("store retained %d payloads, want 1", st.RetainedCount)
	}
}

// TestPackReportFacadeRoundTrip covers the façade re-export with a
// multithreaded report so MRLs cross the archive boundary too.
func TestPackReportFacadeRoundTrip(t *testing.T) {
	const scale = 100
	var mt *workload.BugApp
	for _, b := range workload.Bugs(scale) {
		if b.Multithreaded {
			mt = b
			break
		}
	}
	if mt == nil {
		t.Skip("no multithreaded analogue")
	}
	kcfg := mt.Kernel
	kcfg.MaxSteps = 10_000_000
	res, rep, _ := Record(mt.Image, kcfg, Config{IntervalLength: 50_000})
	if res.Crash == nil {
		t.Fatalf("%s did not crash", mt.Name)
	}
	blob, err := PackReport(rep)
	if err != nil {
		t.Fatalf("PackReport: %v", err)
	}
	got, err := UnpackReport(blob)
	if err != nil {
		t.Fatalf("UnpackReport: %v", err)
	}
	if len(got.FLLs) != len(rep.FLLs) || len(got.MRLs) != len(rep.MRLs) {
		t.Fatalf("thread sets differ: %d/%d FLL, %d/%d MRL threads",
			len(got.FLLs), len(rep.FLLs), len(got.MRLs), len(rep.MRLs))
	}
	// The unpacked multithreaded report must replay to the same crash.
	out, err := NewMultiReplayer(mt.Image, got).Run()
	if err != nil {
		t.Fatalf("multi replay of unpacked report: %v", err)
	}
	crash := out.Threads[res.Crash.TID]
	if crash == nil || crash.Fault == nil || crash.Fault.PC != res.Crash.Fault.PC {
		t.Fatalf("replayed fault %+v, recorded pc %#x", crash, res.Crash.Fault.PC)
	}
}
