package bugnet

import (
	"path/filepath"
	"testing"
)

const demoSource = `
        .data
tbl:    .word 3, 5, 7, 0
        .text
main:   la   t0, tbl
        li   s0, 0
sum:    lw   t1, (t0)
        beqz t1, done
        add  s0, s0, t1
        addi t0, t0, 4
        j    sum
done:   la   t2, tbl
        lw   t3, 12(t2)       # the zero terminator: "pointer"
boom:   lw   a0, (t3)         # null deref
`

func TestPublicAPIRecordReplay(t *testing.T) {
	img, err := Assemble("demo.s", demoSource)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	res, rep, rec := Record(img, MachineConfig{}, Config{TraceDepth: 4096})
	if res.Crash == nil {
		t.Fatal("demo program did not crash")
	}
	if err := VerifyReplay(img, rec); err != nil {
		t.Fatalf("VerifyReplay: %v", err)
	}
	rr, err := NewReplayer(img, rep.FLLs[res.Crash.TID]).Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Fault == nil || rr.Fault.PC != img.MustSymbol("boom") {
		t.Fatalf("replayed fault = %+v", rr.Fault)
	}
	if got := Disassemble(img, rr.Fault.PC); got != "lw a0, 0(t6)" && got == "" {
		// exact register naming depends on the source; just require a lw
		t.Logf("fault instruction: %s", got)
	}
}

func TestDisassembleBounds(t *testing.T) {
	img, _ := Assemble("d.s", "main: nop\n")
	if Disassemble(img, 0x10) != "<outside text>" {
		t.Error("out-of-text disassembly not flagged")
	}
	if Disassemble(img, img.Entry) != "addi zero, zero, 0" {
		t.Errorf("nop disassembles to %q", Disassemble(img, img.Entry))
	}
}

func TestSaveLoadReport(t *testing.T) {
	img, _ := Assemble("demo.s", demoSource)
	res, rep, _ := Record(img, MachineConfig{}, Config{IntervalLength: 16})
	if res.Crash == nil {
		t.Fatal("no crash")
	}
	dir := filepath.Join(t.TempDir(), "report")
	if err := SaveReport(dir, rep); err != nil {
		t.Fatalf("SaveReport: %v", err)
	}
	got, err := LoadReport(dir)
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	if got.PID != rep.PID {
		t.Error("PID lost")
	}
	if got.Crash == nil || got.Crash.TID != rep.Crash.TID ||
		got.Crash.Fault.PC != rep.Crash.Fault.PC {
		t.Errorf("crash info lost: %+v", got.Crash)
	}
	if len(got.FLLs[0]) != len(rep.FLLs[0]) {
		t.Fatalf("FLL count = %d; want %d", len(got.FLLs[0]), len(rep.FLLs[0]))
	}
	// The reloaded logs must drive a replay to the same fault.
	rr, err := NewReplayer(img, got.FLLs[res.Crash.TID]).Run()
	if err != nil {
		t.Fatalf("replay from disk: %v", err)
	}
	if rr.Fault == nil || rr.Fault.PC != res.Crash.Fault.PC {
		t.Error("replay from saved report diverged")
	}
}

func TestLoadReportErrors(t *testing.T) {
	if _, err := LoadReport(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestWorkloadAccessors(t *testing.T) {
	if len(SPECWorkloads()) != 7 {
		t.Error("SPEC workload count")
	}
	if len(BugWorkloads(100)) != 18 {
		t.Error("bug workload count")
	}
}
