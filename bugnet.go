// Package bugnet is a full reimplementation of the BugNet architecture
// (Narayanasamy, Pokam, Calder — ISCA 2005) for deterministic replay
// debugging, together with the simulated machine it records, the FDR
// baseline it is compared against, and the harness regenerating every
// table and figure of the paper's evaluation.
//
// # Quick start
//
//	img, err := bugnet.Assemble("prog.s", source)
//	res, report, rec := bugnet.Record(img, bugnet.MachineConfig{}, bugnet.Config{})
//	if res.Crash != nil {
//	    rr, err := bugnet.NewReplayer(img, report.FLLs[res.Crash.TID]).Run()
//	    // rr.Fault.PC is the crashing instruction; rr.Final the state
//	    // just before the crash.
//	}
//
// The package is a façade over the internal packages: internal/core holds
// the recorder and replayers (the paper's contribution), internal/kernel
// the guest machine and OS, internal/fdr the Flight Data Recorder
// baseline, and internal/bench the experiment harness. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for measured results.
package bugnet

import (
	"bugnet/internal/asm"
	"bugnet/internal/core"
	"bugnet/internal/cpu"
	"bugnet/internal/kernel"
	"bugnet/internal/workload"
)

// Core types, re-exported for a single-import experience.
type (
	// Config parameterizes the BugNet recorder (checkpoint interval,
	// dictionary size, cache geometry, log budgets, extensions).
	Config = core.Config
	// Recorder is the attached BugNet hardware model.
	Recorder = core.Recorder
	// CrashReport is the set of logs shipped back to the developer.
	CrashReport = core.CrashReport
	// Replayer deterministically re-executes one thread from its logs.
	Replayer = core.Replayer
	// ReplayResult summarizes a replay.
	ReplayResult = core.ReplayResult
	// MultiReplayer replays all threads and reconstructs their
	// interleaving from the Memory Race Logs.
	MultiReplayer = core.MultiReplayer
	// MultiReplayResult summarizes a multithreaded replay.
	MultiReplayResult = core.MultiReplayResult
	// Race is an inferred data race.
	Race = core.Race
	// BinaryID identifies the exact binary a report was recorded from.
	BinaryID = core.BinaryID
	// TraceEntry is one instruction of a verification trace.
	TraceEntry = core.TraceEntry
	// Debugger navigates a recorded window interactively: breakpoints,
	// stepping, time travel, and inspection of touched memory.
	Debugger = core.Debugger
	// StopReason tells why the debugger returned control.
	StopReason = core.StopReason

	// Image is an assembled guest program.
	Image = asm.Image
	// MachineConfig parameterizes the guest machine and OS.
	MachineConfig = kernel.Config
	// Machine is the simulated multiprocessor.
	Machine = kernel.Machine
	// Result summarizes a completed run.
	Result = kernel.Result
	// CrashInfo identifies a crash.
	CrashInfo = kernel.CrashInfo
	// FaultInfo describes an architectural fault.
	FaultInfo = cpu.FaultInfo
	// FaultCause classifies an architectural fault.
	FaultCause = cpu.FaultCause

	// Workload is a packaged guest program with inputs.
	Workload = workload.Workload
	// BugApp is one of the Table 1 bug analogues.
	BugApp = workload.BugApp
)

// ErrDiverged reports that a replay failed to reproduce its recording.
var ErrDiverged = core.ErrDiverged

// Debugger stop reasons.
const (
	StopStep  = core.StopStep  // requested step count exhausted
	StopBreak = core.StopBreak // hit a breakpoint
	StopEnd   = core.StopEnd   // reached the end of the recorded window
)

// Assemble builds a guest program from assembly source. The name is used
// in diagnostics.
func Assemble(name, source string) (*Image, error) {
	return asm.Assemble(name, source)
}

// Disassemble renders the instruction word at pc of an image, for crash
// reports and debugging output.
func Disassemble(img *Image, pc uint32) string {
	return img.DisassembleAt(pc)
}

// NewMachine builds a guest machine for the image.
func NewMachine(img *Image, cfg MachineConfig) *Machine {
	return kernel.New(img, cfg, nil)
}

// NewRecorder attaches a BugNet recorder to a machine. Call before
// Machine.Run (or after a warm-up Run to start recording mid-execution,
// as continuous recording does).
func NewRecorder(m *Machine, cfg Config) *Recorder {
	return core.NewRecorder(m, cfg)
}

// Record runs the image under a fresh machine and recorder and returns
// the run result, the crash report, and the recorder for statistics.
func Record(img *Image, mcfg MachineConfig, rcfg Config) (*Result, *CrashReport, *Recorder) {
	return core.Record(img, mcfg, rcfg)
}

// NewReplayer builds a single-thread replayer over the log views of one
// thread (report.FLLs[tid]); only the interval currently replaying is held
// decoded.
func NewReplayer(img *Image, logs []*FLLRef) *Replayer {
	return core.NewReplayer(img, logs)
}

// NewReplayerLogs wraps already-decoded logs for replay (tests, synthetic
// windows).
func NewReplayerLogs(img *Image, logs []*FLL) *Replayer {
	return core.NewReplayerLogs(img, logs)
}

// NewMultiReplayer builds a replayer over every thread of a report, with
// MRL-driven ordering reconstruction and optional race detection.
func NewMultiReplayer(img *Image, report *CrashReport) *MultiReplayer {
	return core.NewMultiReplayer(img, report)
}

// VerifyReplay replays every thread of the recorder's report and checks
// instruction-exact equivalence against the recorded execution. Requires
// Config.TraceDepth > 0.
func VerifyReplay(img *Image, rec *Recorder) error {
	return core.VerifyReplay(img, rec)
}

// IdentifyBinary computes the identity of an image, as stored in crash
// reports and verified before replay.
func IdentifyBinary(img *Image) BinaryID { return core.IdentifyBinary(img) }

// NewDebugger opens one thread's logs for interactive deterministic
// replay: breakpoints, stepping, backwards time travel, and inspection of
// every memory location the recorded window touched.
func NewDebugger(img *Image, logs []*FLLRef) (*Debugger, error) {
	return core.NewDebugger(img, logs)
}

// SPECWorkloads returns the seven SPEC 2000 analogues used by the paper's
// evaluation.
func SPECWorkloads() []*Workload { return workload.SPEC() }

// BugWorkloads returns the eighteen Table 1 bug analogues; scale divides
// the engineered root-cause-to-crash windows (1 = the paper's absolute
// sizes).
func BugWorkloads(scale int) []*BugApp { return workload.Bugs(scale) }
