package bugnet

import (
	"bytes"
	"path/filepath"
	"testing"

	"bugnet/internal/logstore"
)

// spillProgram runs a long checkpoint-dense loop and then crashes, so a
// recording produces many intervals for the retention budget to chew on.
const spillProgram = `
        .data
buf:    .space 256
        .text
main:   li   s0, 400           # outer iterations
outer:  la   t0, buf
        li   t1, 64
fill:   sw   t1, (t0)
        lw   t2, (t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, fill
        addi s0, s0, -1
        bnez s0, outer
        li   t3, 0
boom:   lw   a0, (t3)          # null deref after the long window
`

// recordSpill records spillProgram with the given FLL/MRL stores (nil =
// memory) and budget.
func recordSpill(t *testing.T, budget int64, fllStore, mrlStore *logstore.Store) (*Result, *CrashReport, *Recorder) {
	t.Helper()
	img, err := Assemble("spill.s", spillProgram)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{IntervalLength: 500, FLLBudget: budget, MRLBudget: budget,
		FLLStore: fllStore, MRLStore: mrlStore}
	res, rep, rec := Record(img, MachineConfig{}, cfg)
	if res.Crash == nil {
		t.Fatal("spill program did not crash")
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("recording degraded: %v", err)
	}
	return res, rep, rec
}

// openDisk builds a disk-backed store under dir.
func openDisk(t *testing.T, dir string, budget int64) *logstore.Store {
	t.Helper()
	b, err := logstore.OpenDisk(dir, logstore.DiskOptions{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	s, err := logstore.Open(budget, b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestDiskSpillExtendsReplayWindow is the acceptance scenario: with a
// disk backend and a byte budget larger than a capped heap, recording
// sustains a replay window the memory backend cannot retain, and the
// window replays to the recorded crash end to end.
func TestDiskSpillExtendsReplayWindow(t *testing.T) {
	// The capped "heap": a small memory region that must evict.
	const heapCap = 2_000
	_, memRep, memRec := recordSpill(t, heapCap, nil, nil)
	memWindow := memRec.FLLStore().ReplayWindow(0)
	if memRec.FLLStore().Stats().EvictedCount == 0 {
		t.Fatal("heap cap did not force eviction; raise the workload size")
	}

	// The disk region: 16x the heap budget, spilled to segments.
	dir := t.TempDir()
	diskStore := openDisk(t, filepath.Join(dir, "fll"), heapCap*16)
	mrlStore := openDisk(t, filepath.Join(dir, "mrl"), heapCap*16)
	_, diskRep, diskRec := recordSpill(t, heapCap*16, diskStore, mrlStore)
	diskWindow := diskRec.FLLStore().ReplayWindow(0)

	if diskWindow <= memWindow {
		t.Fatalf("disk window %d not larger than capped-heap window %d", diskWindow, memWindow)
	}

	// Both windows replay to the recorded crash.
	img, _ := Assemble("spill.s", spillProgram)
	for name, rep := range map[string]*CrashReport{"memory": memRep, "disk": diskRep} {
		rr, err := NewReplayer(img, rep.FLLs[0]).Run()
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if rr.Fault == nil || rr.Fault.PC != img.MustSymbol("boom") {
			t.Fatalf("%s replay fault = %+v", name, rr.Fault)
		}
	}
}

// TestBackendPackDeterminism is the cross-backend determinism acceptance:
// the same execution recorded under equal budgets into the memory FIFO
// and into disk segments packs to byte-identical archives, and both
// replay identically.
func TestBackendPackDeterminism(t *testing.T) {
	const budget = 4_000
	_, memRep, _ := recordSpill(t, budget, nil, nil)

	dir := t.TempDir()
	diskStore := openDisk(t, filepath.Join(dir, "fll"), budget)
	mrlStore := openDisk(t, filepath.Join(dir, "mrl"), budget)
	_, diskRep, _ := recordSpill(t, budget, diskStore, mrlStore)

	memBlob, err := PackReport(memRep)
	if err != nil {
		t.Fatal(err)
	}
	diskBlob, err := PackReport(diskRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memBlob, diskBlob) {
		t.Fatalf("packed archives differ across backends: memory %d bytes (id %s), disk %d bytes (id %s)",
			len(memBlob), ReportID(memBlob), len(diskBlob), ReportID(diskBlob))
	}

	// Byte-identical in, byte-identical replay out: unpack the disk blob
	// and check the replayed final state matches the memory report's.
	img, _ := Assemble("spill.s", spillProgram)
	fromDisk, err := UnpackReport(diskBlob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewReplayer(img, memRep.FLLs[0]).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewReplayer(img, fromDisk.FLLs[0]).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Final != b.Final || a.Instructions != b.Instructions || a.Injected != b.Injected {
		t.Fatalf("replays differ: %+v vs %+v", a, b)
	}
}

// TestSpilledWindowSurvivesReopen: a recording spilled to disk is still a
// replayable window after the process "restarts" (reopen the segment
// directory and rebuild the report from the recovered region).
func TestSpilledWindowSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fllDir := filepath.Join(dir, "fll")
	st := openDisk(t, fllDir, 0)
	_, _, rec := recordSpill(t, 0, st, nil)
	wantWindow := rec.FLLStore().ReplayWindow(0)
	wantCount := rec.FLLStore().Stats().RetainedCount
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openDisk(t, fllDir, 0)
	if got := st2.ReplayWindow(0); got != wantWindow {
		t.Fatalf("recovered window %d, want %d", got, wantWindow)
	}
	if got := st2.Stats().RetainedCount; got != wantCount {
		t.Fatalf("recovered %d logs, want %d", got, wantCount)
	}
}
