package bugnet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// savedReport records the demo crash and saves it, returning the report
// and its directory.
func savedReport(t *testing.T) (*CrashReport, string) {
	t.Helper()
	img, err := Assemble("demo.s", demoSource)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	res, rep, _ := Record(img, MachineConfig{}, Config{IntervalLength: 16})
	if res.Crash == nil {
		t.Fatal("no crash")
	}
	dir := filepath.Join(t.TempDir(), "report")
	if err := SaveReport(dir, rep); err != nil {
		t.Fatalf("SaveReport: %v", err)
	}
	return rep, dir
}

func TestLoadReportMissingManifest(t *testing.T) {
	if _, err := LoadReport(t.TempDir()); err == nil {
		t.Fatal("loaded a report from an empty directory")
	}
}

func TestLoadReportCorruptManifest(t *testing.T) {
	_, dir := savedReport(t)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(dir); err == nil || !strings.Contains(err.Error(), "bad manifest") {
		t.Fatalf("corrupt manifest: err = %v", err)
	}
}

func TestLoadReportMissingLogFile(t *testing.T) {
	_, dir := savedReport(t)
	if err := os.Remove(filepath.Join(dir, "fll-t0-c0.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(dir); err == nil {
		t.Fatal("loaded a report with a missing log file")
	}
}

func TestLoadReportTruncatedFLL(t *testing.T) {
	_, dir := savedReport(t)
	name := filepath.Join(dir, "fll-t0-c0.bin")
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(dir); err == nil {
		t.Fatal("loaded a report with a truncated FLL")
	}
}

func TestLoadReportCorruptMRL(t *testing.T) {
	_, dir := savedReport(t)
	// The uniprocessor demo records no MRLs; fabricate a manifest entry
	// pointing at a garbage payload.
	mj := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(mj)
	if err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	man["mrls"] = []map[string]any{{"tid": 0, "cid": 0, "file": "mrl-t0-c0.bin"}}
	raw, _ = json.Marshal(man)
	if err := os.WriteFile(mj, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "mrl-t0-c0.bin"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(dir); err == nil {
		t.Fatal("loaded a report with a corrupt MRL")
	}
}

func TestLoadReportRejectsPathTraversal(t *testing.T) {
	_, dir := savedReport(t)
	// Plant a secret outside the report directory, then point the
	// manifest at it with a traversal reference.
	outside := filepath.Join(filepath.Dir(dir), "secret.bin")
	if err := os.WriteFile(outside, []byte("secret"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, hostile := range []string{"../secret.bin", "/etc/passwd", "sub/../../secret.bin", ""} {
		mj := filepath.Join(dir, "manifest.json")
		raw, err := os.ReadFile(mj)
		if err != nil {
			t.Fatal(err)
		}
		var man map[string]any
		if err := json.Unmarshal(raw, &man); err != nil {
			t.Fatal(err)
		}
		flls := man["flls"].([]any)
		flls[0].(map[string]any)["file"] = hostile
		raw, _ = json.Marshal(man)
		if err := os.WriteFile(mj, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadReport(dir)
		if err == nil {
			t.Fatalf("manifest file %q accepted", hostile)
		}
		if !strings.Contains(err.Error(), "outside the report directory") {
			t.Errorf("manifest file %q: err = %v, want confinement error", hostile, err)
		}
	}
}

func TestLoadReportRejectsImplausibleTID(t *testing.T) {
	_, dir := savedReport(t)
	for _, tid := range []int{-1, 2_000_000_000} {
		mj := filepath.Join(dir, "manifest.json")
		raw, err := os.ReadFile(mj)
		if err != nil {
			t.Fatal(err)
		}
		var man map[string]any
		if err := json.Unmarshal(raw, &man); err != nil {
			t.Fatal(err)
		}
		man["flls"].([]any)[0].(map[string]any)["tid"] = tid
		raw, _ = json.Marshal(man)
		if err := os.WriteFile(mj, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadReport(dir)
		if err == nil || !strings.Contains(err.Error(), "implausible thread id") {
			t.Errorf("tid %d: err = %v, want implausible-TID error", tid, err)
		}
	}
}

func TestSaveLoadReportCrashMetadata(t *testing.T) {
	rep, dir := savedReport(t)
	got, err := LoadReport(dir)
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	if got.Crash == nil {
		t.Fatal("crash metadata lost")
	}
	g, w := got.Crash.Fault, rep.Crash.Fault
	if got.Crash.TID != rep.Crash.TID || g.Cause != w.Cause || g.PC != w.PC ||
		g.Addr != w.Addr || g.IC != w.IC {
		t.Errorf("crash fault round trip: got %+v want %+v", g, w)
	}
	if got.Binary != rep.Binary {
		t.Errorf("binary id round trip: got %+v want %+v", got.Binary, rep.Binary)
	}
}

func TestSaveReportCleanRun(t *testing.T) {
	img, err := Assemble("clean.s", "main: li a0, 0\n  li a7, 1\n  syscall\n")
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	_, rep, _ := Record(img, MachineConfig{}, Config{IntervalLength: 16})
	dir := filepath.Join(t.TempDir(), "clean")
	if err := SaveReport(dir, rep); err != nil {
		t.Fatalf("SaveReport: %v", err)
	}
	got, err := LoadReport(dir)
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	if got.Crash != nil {
		t.Errorf("clean run grew a crash record: %+v", got.Crash)
	}
}
