package bugnet_test

import (
	"fmt"
	"log"

	"bugnet"
)

// Example demonstrates the full record-and-replay cycle: a program crashes
// on a corrupted pointer, and replaying its First-Load Logs reproduces the
// exact faulting instruction with the state just before the crash.
func Example() {
	img, err := bugnet.Assemble("demo.s", `
        .data
ptr:    .word 0              # never initialized: the bug
        .text
main:   li   t0, 100
work:   addi t0, t0, -1      # ... unrelated work ...
        bnez t0, work
        la   t1, ptr
        lw   t2, (t1)        # loads the null pointer
boom:   lw   a0, (t2)        # crash
`)
	if err != nil {
		log.Fatal(err)
	}

	res, report, _ := bugnet.Record(img, bugnet.MachineConfig{}, bugnet.Config{})
	fmt.Println("crashed:", res.Crash != nil)

	rr, err := bugnet.NewReplayer(img, report.FLLs[res.Crash.TID]).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replayed instructions:", rr.Instructions)
	fmt.Println("faulting instruction:", bugnet.Disassemble(img, rr.Fault.PC))
	fmt.Printf("bad pointer in t2: %#x\n", rr.Final.Regs[7])
	// Output:
	// crashed: true
	// replayed instructions: 204
	// faulting instruction: lw a0, 0(t2)
	// bad pointer in t2: 0x0
}

// ExampleRecord_externalInput shows the paper's central claim: values that
// enter through the operating system (here a read syscall) are reproduced
// during replay purely from the logs — no input is given to the replayer.
func ExampleRecord_externalInput() {
	img, _ := bugnet.Assemble("input.s", `
        .data
buf:    .space 4
        .text
main:   li   a0, 0
        la   a1, buf
        li   a2, 4
        li   a7, 3           # read(stdin, buf, 4)
        syscall
        la   t0, buf
        lw   s0, (t0)        # the OS-written word
        li   a7, 1
        syscall
`)
	_, report, _ := bugnet.Record(img,
		bugnet.MachineConfig{Inputs: map[string][]byte{"stdin": []byte("ABCD")}},
		bugnet.Config{})

	rr, _ := bugnet.NewReplayer(img, report.FLLs[0]).Run()
	fmt.Printf("replayed s0 = %#x\n", rr.Final.Regs[8]) // "ABCD" little-endian
	// Output:
	// replayed s0 = 0x44434241
}

// ExampleIdentifyBinary shows the version-skew check: replaying against a
// different build of the program is rejected up front.
func ExampleIdentifyBinary() {
	v1, _ := bugnet.Assemble("v1.s", "main: li a0, 1\nli a7, 1\nsyscall\n")
	v2, _ := bugnet.Assemble("v2.s", "main: li a0, 2\nli a7, 1\nsyscall\n")

	_, report, _ := bugnet.Record(v1, bugnet.MachineConfig{}, bugnet.Config{})
	fmt.Println("same build: ", report.Binary.Matches(v1) == nil)
	fmt.Println("other build:", report.Binary.Matches(v2) == nil)
	// Output:
	// same build:  true
	// other build: false
}
