package bugnet

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6). Each benchmark regenerates its artifact through internal/bench and
// prints the rows once, so `go test -bench=. -benchmem` reproduces the
// whole evaluation at the benchmark scale. cmd/bugnet-bench runs the same
// experiments at arbitrary scales (-scale 1 = the paper's absolute
// instruction counts).

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"bugnet/internal/bench"
	"bugnet/internal/bus"
	"bugnet/internal/core"
	"bugnet/internal/kernel"
	"bugnet/internal/workload"
)

// benchScale divides the paper's instruction counts during `go test
// -bench`. Override with BUGNET_BENCH_SCALE=NN (1 reproduces the paper's
// absolute windows; expect minutes of runtime).
var benchScale = func() int {
	if v, err := strconv.Atoi(os.Getenv("BUGNET_BENCH_SCALE")); err == nil && v >= 1 {
		return v
	}
	return 1000
}()

var printOnce sync.Map

// emit prints a table once per benchmark run, keyed by id.
func emit(b *testing.B, t *bench.Table) {
	b.Helper()
	if _, dup := printOnce.LoadOrStore(t.ID+t.Title, true); !dup {
		fmt.Printf("\n%s\n", t)
	}
}

// BenchmarkTable1BugWindows regenerates Table 1: the dynamic distance
// between each bug's root cause and its crash.
func BenchmarkTable1BugWindows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table1(benchScale)
		emit(b, t)
		b.ReportMetric(float64(len(t.Rows)), "bugs")
	}
}

// BenchmarkFigure2BugFLLSizes regenerates Figure 2: FLL bytes needed to
// replay each bug's window.
func BenchmarkFigure2BugFLLSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, bench.Figure2(benchScale))
	}
}

// BenchmarkFigure3IntervalSweep regenerates Figure 3: FLL size for a fixed
// replay window across checkpoint interval lengths.
func BenchmarkFigure3IntervalSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, bench.Figure3(benchScale))
	}
}

// BenchmarkFigure4WindowSweep regenerates Figure 4: FLL size versus replay
// window length.
func BenchmarkFigure4WindowSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, bench.Figure4(benchScale))
	}
}

// BenchmarkFigure5DictionaryHitRate and BenchmarkFigure6CompressionRatio
// regenerate the dictionary sweep.
func BenchmarkFigure5DictionaryHitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f5, _ := bench.DictSweep(benchScale)
		emit(b, f5)
	}
}

// BenchmarkFigure6CompressionRatio regenerates Figure 6.
func BenchmarkFigure6CompressionRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f6 := bench.DictSweep(benchScale)
		emit(b, f6)
	}
}

// BenchmarkTable2LogSizes regenerates Table 2: BugNet vs FDR log sizes.
func BenchmarkTable2LogSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, bench.Table2(benchScale))
	}
}

// BenchmarkTable3HardwareComplexity regenerates Table 3.
func BenchmarkTable3HardwareComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, bench.Table3())
	}
}

// BenchmarkOverhead regenerates the §6.3 recording-overhead measurement.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, bench.Overhead(benchScale))
	}
}

// BenchmarkAblationPreserveFL measures the paper's §4.4 future-work
// extension.
func BenchmarkAblationPreserveFL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, bench.AblationPreserveFL(benchScale))
	}
}

// BenchmarkAblationNetzer measures MRL sizes with the transitive
// reduction disabled.
func BenchmarkAblationNetzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, bench.AblationNetzer(benchScale))
	}
}

// BenchmarkRecordingThroughput measures raw recording speed: guest
// instructions per second under full BugNet recording (mcf, the heaviest
// memory workload).
func BenchmarkRecordingThroughput(b *testing.B) {
	w := workload.ByName("mcf")
	m := w.Machine(w.Warmup, nil)
	m.Run()
	rec := core.NewRecorder(m, core.Config{IntervalLength: 1 << 20})
	b.ResetTimer()
	m.SetMaxSteps(w.Warmup + uint64(b.N))
	m.Run()
	b.StopTimer()
	rec.Flush()
	_, total := rec.LoggedOps()
	b.ReportMetric(float64(total)/float64(b.N), "memops/instr")
}

// BenchmarkBaselineThroughput measures the same workload without any
// recorder attached, so the recording slowdown of this simulator can be
// computed from the two benchmarks.
func BenchmarkBaselineThroughput(b *testing.B) {
	w := workload.ByName("mcf")
	m := w.Machine(w.Warmup, nil)
	m.Run()
	b.ResetTimer()
	m.SetMaxSteps(w.Warmup + uint64(b.N))
	m.Run()
}

// BenchmarkBusModel measures the overhead model itself.
func BenchmarkBusModel(b *testing.B) {
	model := bus.New(bus.Config{})
	for i := 0; i < b.N; i++ {
		model.Instruction()
		if i&7 == 0 {
			model.LogBits(39)
		}
		if i&1023 == 0 {
			model.Miss()
		}
	}
}

var _ = kernel.Config{}
